//! RFC 1035 message wire format: encoding with name compression, decoding
//! with pointer-loop protection.

use crate::name::{DnsName, MAX_NAME_LEN};
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Query/record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QType {
    /// IPv4 host address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Start of authority.
    Soa,
    /// Domain name pointer.
    Ptr,
    /// Text strings.
    Txt,
    /// IPv6 host address.
    Aaaa,
    /// Any (query-only meta type).
    Any,
    /// A type we don't model, preserved numerically.
    Other(u16),
}

impl QType {
    /// Wire value.
    pub fn code(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Ns => 2,
            QType::Cname => 5,
            QType::Soa => 6,
            QType::Ptr => 12,
            QType::Txt => 16,
            QType::Aaaa => 28,
            QType::Any => 255,
            QType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_code(v: u16) -> Self {
        match v {
            1 => QType::A,
            2 => QType::Ns,
            5 => QType::Cname,
            6 => QType::Soa,
            12 => QType::Ptr,
            16 => QType::Txt,
            28 => QType::Aaaa,
            255 => QType::Any,
            other => QType::Other(other),
        }
    }
}

impl substrate::json::ToJson for QType {
    fn to_json(&self) -> substrate::json::Json {
        substrate::json::Json::uint(u64::from(self.code()))
    }
}

impl substrate::json::FromJson for QType {
    fn from_json(v: &substrate::json::Json) -> Result<Self, substrate::json::JsonError> {
        let n = v
            .as_u64()
            .ok_or_else(|| substrate::json::JsonError::shape("QType: expected wire code"))?;
        u16::try_from(n)
            .map(QType::from_code)
            .map_err(|_| substrate::json::JsonError::shape("QType: code exceeds u16"))
    }
}

impl fmt::Display for QType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QType::A => write!(f, "A"),
            QType::Ns => write!(f, "NS"),
            QType::Cname => write!(f, "CNAME"),
            QType::Soa => write!(f, "SOA"),
            QType::Ptr => write!(f, "PTR"),
            QType::Txt => write!(f, "TXT"),
            QType::Aaaa => write!(f, "AAAA"),
            QType::Any => write!(f, "ANY"),
            QType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// Response code (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist — the paper's central signal (§4).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused.
    Refused,
    /// Any other code, preserved numerically (4 bits).
    Other(u8),
}

impl Rcode {
    /// Wire value (low 4 bits of the flags word).
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0f,
        }
    }

    /// From wire value.
    pub fn from_code(v: u8) -> Self {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

impl fmt::Display for Rcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rcode::NoError => write!(f, "NOERROR"),
            Rcode::FormErr => write!(f, "FORMERR"),
            Rcode::ServFail => write!(f, "SERVFAIL"),
            Rcode::NxDomain => write!(f, "NXDOMAIN"),
            Rcode::NotImp => write!(f, "NOTIMP"),
            Rcode::Refused => write!(f, "REFUSED"),
            Rcode::Other(v) => write!(f, "RCODE{v}"),
        }
    }
}

/// Record data for the types we model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// IPv6 address.
    Aaaa(Ipv6Addr),
    /// Name server.
    Ns(DnsName),
    /// Alias target.
    Cname(DnsName),
    /// Pointer target.
    Ptr(DnsName),
    /// Text strings (each ≤ 255 bytes on the wire).
    Txt(Vec<String>),
    /// Start of authority.
    Soa {
        /// Primary name server.
        mname: DnsName,
        /// Responsible mailbox (encoded as a name).
        rname: DnsName,
        /// Zone serial.
        serial: u32,
        /// Refresh interval (seconds).
        refresh: u32,
        /// Retry interval (seconds).
        retry: u32,
        /// Expire limit (seconds).
        expire: u32,
        /// Negative-caching TTL (seconds).
        minimum: u32,
    },
    /// Unmodelled rdata, preserved as raw bytes with its type code.
    Other(u16, Vec<u8>),
}

impl RData {
    /// The record type this data belongs to.
    pub fn rtype(&self) -> QType {
        match self {
            RData::A(_) => QType::A,
            RData::Aaaa(_) => QType::Aaaa,
            RData::Ns(_) => QType::Ns,
            RData::Cname(_) => QType::Cname,
            RData::Ptr(_) => QType::Ptr,
            RData::Txt(_) => QType::Txt,
            RData::Soa { .. } => QType::Soa,
            RData::Other(t, _) => QType::from_code(*t),
        }
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: DnsName,
    /// Time to live (seconds).
    pub ttl: u32,
    /// Record data (the type is implied by the data).
    pub rdata: RData,
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Name being queried.
    pub qname: DnsName,
    /// Type being queried.
    pub qtype: QType,
}

/// Header flags we model (class is always IN; opcode always QUERY).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Response flag (QR).
    pub qr: bool,
    /// Authoritative answer (AA).
    pub aa: bool,
    /// Truncated (TC).
    pub tc: bool,
    /// Recursion desired (RD).
    pub rd: bool,
    /// Recursion available (RA).
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction ID.
    pub id: u16,
    /// Header flags.
    pub flags: Flags,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authority: Vec<Record>,
    /// Additional section.
    pub additional: Vec<Record>,
}

impl Message {
    /// A query for one name/type with RD set.
    pub fn query(id: u16, qname: DnsName, qtype: QType) -> Message {
        Message {
            id,
            flags: Flags {
                rd: true,
                ..Flags::default()
            },
            questions: vec![Question { qname, qtype }],
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// A response to `query` with the given rcode and answers; echoes the
    /// question section and sets QR/AA.
    pub fn respond(query: &Message, rcode: Rcode, answers: Vec<Record>) -> Message {
        Message {
            id: query.id,
            flags: Flags {
                qr: true,
                aa: true,
                rd: query.flags.rd,
                ra: false,
                tc: false,
                rcode,
            },
            questions: query.questions.clone(),
            answers,
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// True if this is an NXDOMAIN response.
    pub fn is_nxdomain(&self) -> bool {
        self.flags.qr && self.flags.rcode == Rcode::NxDomain
    }

    /// First A-record address in the answer section, if any.
    pub fn first_a(&self) -> Option<Ipv4Addr> {
        self.answers.iter().find_map(|r| match r.rdata {
            RData::A(ip) => Some(ip),
            _ => None,
        })
    }
}

/// Errors decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Message ended before a field was complete.
    Truncated,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// A label exceeded limits or contained invalid bytes.
    BadLabel,
    /// A decoded name exceeded 255 octets.
    NameTooLong,
    /// Rdata length didn't match its type's requirements.
    BadRdata,
    /// A TXT segment exceeded 255 bytes at encode time.
    TxtSegmentTooLong,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadLabel => write!(f, "bad label"),
            WireError::NameTooLong => write!(f, "decoded name too long"),
            WireError::BadRdata => write!(f, "bad rdata"),
            WireError::TxtSegmentTooLong => write!(f, "TXT segment exceeds 255 bytes"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Encoder<'a> {
    buf: &'a mut Vec<u8>,
    /// Start offsets (< 0x4000) of each distinct name suffix already
    /// emitted, in emission order, for compression pointers. A linear scan
    /// over a handful of offsets replaces the old `HashMap<String, usize>`
    /// keyed by joined suffix strings, which allocated per label; suffix
    /// equality is checked against the wire bytes themselves.
    seen: Vec<u16>,
}

impl<'a> Encoder<'a> {
    fn new(buf: &'a mut Vec<u8>) -> Self {
        buf.clear();
        buf.reserve(512);
        Encoder {
            buf,
            seen: Vec::with_capacity(8),
        }
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Does the (possibly pointer-compressed) name starting at `off` spell
    /// exactly `labels`? Reads the already-written wire, chasing pointers.
    fn suffix_matches(&self, mut off: usize, labels: &[String]) -> bool {
        let mut idx = 0;
        loop {
            let Some(&len) = self.buf.get(off) else {
                return false;
            };
            if len & 0xC0 == 0xC0 {
                let Some(&lo) = self.buf.get(off.saturating_add(1)) else {
                    return false;
                };
                off = usize::from(len & 0x3F) << 8 | usize::from(lo);
                continue;
            }
            if len == 0 {
                return idx == labels.len();
            }
            let Some(label) = labels.get(idx) else {
                return false;
            };
            let start = off.saturating_add(1);
            let Some(end) = start.checked_add(usize::from(len)) else {
                return false;
            };
            let Some(bytes) = self.buf.get(start..end) else {
                return false;
            };
            if bytes != label.as_bytes() {
                return false;
            }
            off = end;
            idx = idx.saturating_add(1);
        }
    }

    /// Emit a (possibly compressed) name. Compression pointers may only
    /// reference offsets < 0x4000. First-emitted suffix wins, exactly as
    /// the old map's vacant-only insert did.
    fn name(&mut self, name: &DnsName) {
        let mut rest = name.labels();
        while let Some((label, tail)) = rest.split_first() {
            if let Some(&off) = self
                .seen
                .iter()
                .find(|&&off| self.suffix_matches(usize::from(off), rest))
            {
                self.u16(0xC000 | off);
                return;
            }
            if self.buf.len() < 0x4000 {
                self.seen.push(self.buf.len() as u16);
            }
            self.buf.push(label.len() as u8);
            self.buf.extend_from_slice(label.as_bytes());
            rest = tail;
        }
        self.buf.push(0);
    }

    fn rdata(&mut self, rdata: &RData) -> Result<(), WireError> {
        // Reserve the length field, fill after encoding.
        let len_pos = self.buf.len();
        self.u16(0);
        match rdata {
            RData::A(ip) => self.buf.extend_from_slice(&ip.octets()),
            RData::Aaaa(ip) => self.buf.extend_from_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) => self.name(n),
            RData::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(WireError::TxtSegmentTooLong);
                    }
                    self.buf.push(s.len() as u8);
                    self.buf.extend_from_slice(s.as_bytes());
                }
            }
            RData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                self.name(mname);
                self.name(rname);
                self.u32(*serial);
                self.u32(*refresh);
                self.u32(*retry);
                self.u32(*expire);
                self.u32(*minimum);
            }
            RData::Other(_, bytes) => self.buf.extend_from_slice(bytes),
        }
        let rdlen = (self.buf.len() - len_pos - 2) as u16;
        // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "encoder-owned buffer: u16(0) above reserved exactly these two bytes")
        self.buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
        Ok(())
    }

    fn record(&mut self, r: &Record) -> Result<(), WireError> {
        self.name(&r.name);
        self.u16(r.rdata.rtype().code());
        self.u16(1); // class IN
        self.u32(r.ttl);
        self.rdata(&r.rdata)
    }
}

/// Encode a message to wire bytes. Thin owned wrapper over [`encode_into`].
pub fn encode(msg: &Message) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    encode_into(msg, &mut out)?;
    Ok(out)
}

/// Encode a message into `out` (cleared first): the scratch-buffer variant
/// of [`encode`]. A caller-owned buffer reused across probes makes the
/// steady-state encode path allocation-free apart from the small
/// compression-offset list. Byte-identical to `encode`.
// tft-lint: hot-root — runs once per DNS probe
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) -> Result<(), WireError> {
    let mut e = Encoder::new(out);
    e.u16(msg.id);
    let f = &msg.flags;
    let mut flags: u16 = 0;
    if f.qr {
        flags |= 1 << 15;
    }
    if f.aa {
        flags |= 1 << 10;
    }
    if f.tc {
        flags |= 1 << 9;
    }
    if f.rd {
        flags |= 1 << 8;
    }
    if f.ra {
        flags |= 1 << 7;
    }
    flags |= f.rcode.code() as u16;
    e.u16(flags);
    e.u16(msg.questions.len() as u16);
    e.u16(msg.answers.len() as u16);
    e.u16(msg.authority.len() as u16);
    e.u16(msg.additional.len() as u16);
    for q in &msg.questions {
        e.name(&q.qname);
        e.u16(q.qtype.code());
        e.u16(1); // class IN
    }
    for r in msg
        .answers
        .iter()
        .chain(&msg.authority)
        .chain(&msg.additional)
    {
        e.record(r)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(((self.u8()? as u16) << 8) | self.u8()? as u16)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(((self.u16()? as u32) << 16) | self.u16()? as u32)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Decode a name, following compression pointers. Pointers must point
    /// strictly backwards, which also bounds the number of jumps.
    fn name(&mut self) -> Result<DnsName, WireError> {
        let mut labels = Vec::new();
        let mut wire_len = 1; // terminating zero
        let mut pos = self.pos;
        let mut jumped = false;
        let mut min_ptr = self.pos; // each pointer must go strictly backwards
        loop {
            let len = *self.buf.get(pos).ok_or(WireError::Truncated)? as usize;
            if len & 0xC0 == 0xC0 {
                let lo = *self.buf.get(pos + 1).ok_or(WireError::Truncated)? as usize;
                let target = ((len & 0x3F) << 8) | lo;
                if target >= min_ptr {
                    return Err(WireError::BadPointer);
                }
                if !jumped {
                    self.pos = pos + 2;
                    jumped = true;
                }
                min_ptr = target;
                pos = target;
                continue;
            }
            if len & 0xC0 != 0 {
                // 0x40/0x80 label types are unsupported on the wire.
                return Err(WireError::BadLabel);
            }
            pos += 1;
            if len == 0 {
                break;
            }
            if len > 63 {
                return Err(WireError::BadLabel);
            }
            let raw = self.buf.get(pos..pos + len).ok_or(WireError::Truncated)?;
            pos += len;
            wire_len += len + 1;
            if wire_len > MAX_NAME_LEN {
                return Err(WireError::NameTooLong);
            }
            if !raw.iter().all(|b| b.is_ascii() && *b != b'.') {
                return Err(WireError::BadLabel);
            }
            labels.push(
                std::str::from_utf8(raw)
                    .map_err(|_| WireError::BadLabel)?
                    .to_ascii_lowercase(),
            );
        }
        if !jumped {
            self.pos = pos;
        }
        Ok(DnsName::from_labels(labels))
    }

    fn record(&mut self) -> Result<Record, WireError> {
        let name = self.name()?;
        let rtype = self.u16()?;
        let _class = self.u16()?;
        let ttl = self.u32()?;
        let rdlen = self.u16()? as usize;
        let rdata_end = self.pos + rdlen;
        if rdata_end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let rdata = match QType::from_code(rtype) {
            QType::A => {
                if rdlen != 4 {
                    return Err(WireError::BadRdata);
                }
                let &[a, b, c, d] = self.take(4)? else {
                    return Err(WireError::BadRdata);
                };
                RData::A(Ipv4Addr::new(a, b, c, d))
            }
            QType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::BadRdata);
                }
                let b: [u8; 16] = self.take(16)?.try_into().map_err(|_| WireError::BadRdata)?;
                RData::Aaaa(Ipv6Addr::from(b))
            }
            QType::Ns => RData::Ns(self.name()?),
            QType::Cname => RData::Cname(self.name()?),
            QType::Ptr => RData::Ptr(self.name()?),
            QType::Txt => {
                let mut strings = Vec::new();
                while self.pos < rdata_end {
                    let len = self.u8()? as usize;
                    let raw = self.take(len)?;
                    strings.push(String::from_utf8_lossy(raw).into_owned());
                }
                RData::Txt(strings)
            }
            QType::Soa => {
                let mname = self.name()?;
                let rname = self.name()?;
                RData::Soa {
                    mname,
                    rname,
                    serial: self.u32()?,
                    refresh: self.u32()?,
                    retry: self.u32()?,
                    expire: self.u32()?,
                    minimum: self.u32()?,
                }
            }
            _ => RData::Other(rtype, self.take(rdlen)?.to_vec()),
        };
        if self.pos != rdata_end {
            return Err(WireError::BadRdata);
        }
        Ok(Record { name, ttl, rdata })
    }
}

/// Decode a wire message.
// tft-lint: hot-root — runs once per DNS probe
// tft-lint: wire-entry — parses untrusted bytes
pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
    let mut d = Decoder { buf, pos: 0 };
    let id = d.u16()?;
    let flags = d.u16()?;
    let qd = d.u16()? as usize;
    let an = d.u16()? as usize;
    let ns = d.u16()? as usize;
    let ar = d.u16()? as usize;
    let mut questions = Vec::with_capacity(qd.min(32));
    for _ in 0..qd {
        let qname = d.name()?;
        let qtype = QType::from_code(d.u16()?);
        let _class = d.u16()?;
        questions.push(Question { qname, qtype });
    }
    let mut sections = [Vec::new(), Vec::new(), Vec::new()];
    for (section, count) in sections.iter_mut().zip([an, ns, ar]) {
        for _ in 0..count {
            section.push(d.record()?);
        }
    }
    let [answers, authority, additional] = sections;
    Ok(Message {
        id,
        flags: Flags {
            qr: flags & (1 << 15) != 0,
            aa: flags & (1 << 10) != 0,
            tc: flags & (1 << 9) != 0,
            rd: flags & (1 << 8) != 0,
            ra: flags & (1 << 7) != 0,
            rcode: Rcode::from_code((flags & 0x0f) as u8),
        },
        questions,
        answers,
        authority,
        additional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn roundtrip(msg: &Message) -> Message {
        decode(&encode(msg).unwrap()).unwrap()
    }

    #[test]
    fn query_roundtrip() {
        let q = Message::query(0x1234, name("probe.example.com"), QType::A);
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn response_roundtrip_all_rdata_types() {
        let q = Message::query(7, name("x.example.com"), QType::Any);
        let mut resp = Message::respond(
            &q,
            Rcode::NoError,
            vec![
                Record {
                    name: name("x.example.com"),
                    ttl: 300,
                    rdata: RData::A(Ipv4Addr::new(192, 0, 2, 1)),
                },
                Record {
                    name: name("x.example.com"),
                    ttl: 300,
                    rdata: RData::Aaaa("2001:db8::1".parse().unwrap()),
                },
                Record {
                    name: name("x.example.com"),
                    ttl: 60,
                    rdata: RData::Cname(name("y.example.com")),
                },
                Record {
                    name: name("x.example.com"),
                    ttl: 60,
                    rdata: RData::Txt(vec!["hello".into(), "world".into()]),
                },
            ],
        );
        resp.authority.push(Record {
            name: name("example.com"),
            ttl: 3600,
            rdata: RData::Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 2016041301,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        });
        resp.additional.push(Record {
            name: name("ns1.example.com"),
            ttl: 3600,
            rdata: RData::A(Ipv4Addr::new(198, 51, 100, 53)),
        });
        assert_eq!(roundtrip(&resp), resp);
    }

    #[test]
    fn nxdomain_response() {
        let q = Message::query(9, name("nxd.example.com"), QType::A);
        let r = Message::respond(&q, Rcode::NxDomain, vec![]);
        assert!(r.is_nxdomain());
        assert!(roundtrip(&r).is_nxdomain());
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let q = Message::query(1, name("a.long-zone-name.example.com"), QType::A);
        let mut resp = Message::respond(&q, Rcode::NoError, vec![]);
        for i in 0..5 {
            resp.answers.push(Record {
                name: name("a.long-zone-name.example.com"),
                ttl: 60,
                rdata: RData::A(Ipv4Addr::new(10, 0, 0, i)),
            });
        }
        let encoded = encode(&resp).unwrap();
        // Uncompressed: 12 (header) + 34 (question) + 5 × (30-octet name +
        // 14 octets of fixed fields + rdata) = 266. With compression each
        // answer's owner name is a 2-octet pointer: 12 + 34 + 5 × 16 = 126.
        assert_eq!(encoded.len(), 126, "compression not applied");
        assert_eq!(decode(&encoded).unwrap(), resp);
    }

    #[test]
    fn encode_into_matches_encode() {
        // The scratch-buffer path must be byte-identical to the owned path,
        // including compression pointers into partially-shared suffixes
        // (ns1/hostmaster share `example.com` with the qname's tail) and
        // when the scratch buffer carries garbage from a previous probe.
        let q = Message::query(7, name("x.sub.example.com"), QType::Any);
        let mut resp = Message::respond(
            &q,
            Rcode::NoError,
            vec![
                Record {
                    name: name("x.sub.example.com"),
                    ttl: 60,
                    rdata: RData::Cname(name("y.sub.example.com")),
                },
                Record {
                    name: name("y.sub.example.com"),
                    ttl: 60,
                    rdata: RData::A(Ipv4Addr::new(192, 0, 2, 7)),
                },
            ],
        );
        resp.authority.push(Record {
            name: name("example.com"),
            ttl: 3600,
            rdata: RData::Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 2016041301,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        });
        let mut scratch = b"garbage from a previous probe".to_vec();
        for msg in [&q, &resp] {
            encode_into(msg, &mut scratch).unwrap();
            assert_eq!(scratch, encode(msg).unwrap());
            assert_eq!(decode(&scratch).unwrap(), *msg);
        }
    }

    #[test]
    fn pointer_loop_is_rejected() {
        // Hand-craft: header + a name that is a pointer to itself at offset 12.
        let mut buf = vec![0u8; 12];
        buf[4] = 0;
        buf[5] = 1; // qdcount = 1
        buf.extend_from_slice(&[0xC0, 12]); // pointer to itself
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&buf), Err(WireError::BadPointer));
    }

    #[test]
    fn forward_pointer_is_rejected() {
        let mut buf = vec![0u8; 12];
        buf[5] = 1;
        buf.extend_from_slice(&[0xC0, 40]); // points past itself
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&buf), Err(WireError::BadPointer));
    }

    #[test]
    fn truncated_messages_error_cleanly() {
        let q = Message::query(3, name("probe.example.com"), QType::A);
        let full = encode(&q).unwrap();
        for cut in 0..full.len() {
            // Every prefix must decode to an error, never panic.
            let _ = decode(&full[..cut]);
        }
        assert_eq!(decode(&full[..4]), Err(WireError::Truncated));
    }

    #[test]
    fn first_a_helper() {
        let q = Message::query(5, name("probe.example.com"), QType::A);
        let resp = Message::respond(
            &q,
            Rcode::NoError,
            vec![Record {
                name: name("probe.example.com"),
                ttl: 1,
                rdata: RData::A(Ipv4Addr::new(203, 0, 113, 9)),
            }],
        );
        assert_eq!(resp.first_a(), Some(Ipv4Addr::new(203, 0, 113, 9)));
        let nx = Message::respond(&q, Rcode::NxDomain, vec![]);
        assert_eq!(nx.first_a(), None);
    }

    #[test]
    fn txt_segment_too_long_rejected_at_encode() {
        let q = Message::query(5, name("t.example.com"), QType::Txt);
        let resp = Message::respond(
            &q,
            Rcode::NoError,
            vec![Record {
                name: name("t.example.com"),
                ttl: 1,
                rdata: RData::Txt(vec!["x".repeat(256)]),
            }],
        );
        assert_eq!(encode(&resp), Err(WireError::TxtSegmentTooLong));
    }
}
