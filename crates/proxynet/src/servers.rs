//! Server-side infrastructure: the measurement web server (with the request
//! log that reveals exit-node IPs and monitor refetches), origin sites for
//! the HTTPS experiment, and ISP landing servers for hijack pages.

use certs::Certificate;
use httpwire::{Response, StatusCode};
use netsim::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One logged HTTP request at the measurement web server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebLogEntry {
    /// Arrival time.
    pub at: SimTime,
    /// Source address (exit node, VPN egress, or monitor infrastructure).
    pub src: Ipv4Addr,
    /// `Host` header.
    pub host: String,
    /// Request path.
    pub path: String,
    /// `User-Agent` header, if any.
    pub user_agent: Option<String>,
}

substrate::json_struct!(WebLogEntry {
    at,
    src,
    host,
    path,
    user_agent: None,
});

/// The study's web server: serves probe objects and logs every request.
#[derive(Debug, Clone, Default)]
pub struct WebServer {
    /// host → path → response; host keys are stored lowercase.
    routes: HashMap<String, HashMap<String, Response>>,
    log: Vec<WebLogEntry>,
    /// Reused lowercase-host scratch: route lookups need no owned key
    /// (only the retained log entry owns its copy of the host).
    host_scratch: String,
}

impl WebServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lowercase `s` into `scratch` without allocating in steady state.
    fn lower_into(scratch: &mut String, s: &str) {
        scratch.clear();
        scratch.push_str(s);
        scratch.make_ascii_lowercase();
    }

    /// Install content at `host`/`path`.
    pub fn put(&mut self, host: &str, path: &str, response: Response) {
        self.routes
            .entry(host.to_ascii_lowercase())
            .or_default()
            .insert(path.to_string(), response);
    }

    /// Remove content. Returns true if it existed.
    pub fn remove(&mut self, host: &str, path: &str) -> bool {
        Self::lower_into(&mut self.host_scratch, host);
        let Some(paths) = self.routes.get_mut(self.host_scratch.as_str()) else {
            return false;
        };
        let hit = paths.remove(path).is_some();
        if paths.is_empty() {
            // Probe hosts are unique per probe; dropping the emptied inner
            // map keeps a long run's route table from accumulating husks.
            self.routes.remove(self.host_scratch.as_str());
        }
        hit
    }

    /// Handle a request: log it and serve the route (owned 404 on miss).
    ///
    /// Thin cloning wrapper over [`WebServer::handle_ref`] for callers
    /// that need an owned response.
    pub fn handle(
        &mut self,
        at: SimTime,
        src: Ipv4Addr,
        host: &str,
        path: &str,
        user_agent: Option<&str>,
    ) -> Response {
        match self.handle_ref(at, src, host, path, user_agent) {
            // tft-lint: allow(hot-path-alloc, reason = "cold wrapper: the per-probe delivery path calls handle_ref and encodes from the borrow; only monitor refetch events and tests take the owned copy")
            Some(r) => r.clone(),
            None => Response::new(StatusCode::NOT_FOUND, b"not found".to_vec()),
        }
    }

    /// Handle a request: log it and return the matching route *borrowed*
    /// (`None` on a miss; the caller renders its 404). The hot delivery
    /// path encodes straight from this reference instead of cloning
    /// multi-KB probe objects per request.
    pub fn handle_ref(
        &mut self,
        at: SimTime,
        src: Ipv4Addr,
        host: &str,
        path: &str,
        user_agent: Option<&str>,
    ) -> Option<&Response> {
        Self::lower_into(&mut self.host_scratch, host);
        self.log.push(WebLogEntry {
            at,
            src,
            host: self.host_scratch.clone(),
            path: path.to_string(),
            user_agent: user_agent.map(|s| s.to_string()),
        });
        self.routes.get(self.host_scratch.as_str())?.get(path)
    }

    /// The request log, in arrival order of processing. Monitor refetches
    /// are appended when their event fires, so entries are
    /// chronologically ordered per run; [`WebServer::log_sorted`] guarantees
    /// order when analysis needs it.
    pub fn log(&self) -> &[WebLogEntry] {
        &self.log
    }

    /// The log sorted by arrival time (stable).
    pub fn log_sorted(&self) -> Vec<WebLogEntry> {
        let mut v = self.log.clone();
        v.sort_by_key(|e| e.at);
        v
    }

    /// Requests whose `Host` matches, in log order.
    pub fn requests_for_host<'a>(
        &'a self,
        host: &'a str,
    ) -> impl Iterator<Item = &'a WebLogEntry> + 'a {
        let host = host.to_ascii_lowercase();
        self.log.iter().filter(move |e| e.host == host)
    }

    /// Append log entries recorded elsewhere (shard evidence merging —
    /// see `World::absorb_evidence`).
    pub fn absorb_log(&mut self, entries: &[WebLogEntry]) {
        self.log.extend_from_slice(entries);
    }

    /// Clear the log.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }
}

/// A third-party origin site (popular site, university, or one of our
/// intentionally-invalid HTTPS sites).
#[derive(Debug, Clone)]
pub struct OriginSite {
    /// Hostname.
    pub host: String,
    /// Server address.
    pub ip: Ipv4Addr,
    /// HTTP body served on `/`.
    pub http_body: Vec<u8>,
    /// Certificate chain presented on :443 (leaf first); empty if the site
    /// has no HTTPS.
    pub chain: Vec<Certificate>,
    /// Whether the chain validates against the public root store at world
    /// build time (precomputed ground truth used by interceptor logic; the
    /// measurement client recomputes its own verdicts).
    pub chain_valid: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_installed_route_and_logs() {
        let mut ws = WebServer::new();
        ws.put(
            "probe.example",
            "/obj/page.html",
            Response::ok("text/html", b"<html/>".to_vec()),
        );
        let r = ws.handle(
            SimTime::from_millis(5),
            Ipv4Addr::new(11, 0, 0, 9),
            "Probe.Example",
            "/obj/page.html",
            Some("hola/1.0"),
        );
        assert_eq!(r.status, StatusCode::OK);
        assert_eq!(ws.log().len(), 1);
        assert_eq!(ws.log()[0].host, "probe.example");
        assert_eq!(ws.log()[0].user_agent.as_deref(), Some("hola/1.0"));
    }

    #[test]
    fn unknown_route_is_404_but_still_logged() {
        let mut ws = WebServer::new();
        let r = ws.handle(
            SimTime::EPOCH,
            Ipv4Addr::new(1, 1, 1, 1),
            "x",
            "/nope",
            None,
        );
        assert_eq!(r.status, StatusCode::NOT_FOUND);
        assert_eq!(ws.log().len(), 1);
    }

    #[test]
    fn log_sorted_orders_by_time() {
        let mut ws = WebServer::new();
        ws.handle(
            SimTime::from_millis(50),
            Ipv4Addr::new(1, 1, 1, 1),
            "h",
            "/",
            None,
        );
        ws.log.push(WebLogEntry {
            at: SimTime::from_millis(10),
            src: Ipv4Addr::new(2, 2, 2, 2),
            host: "h".into(),
            path: "/".into(),
            user_agent: None,
        });
        let sorted = ws.log_sorted();
        assert!(sorted[0].at < sorted[1].at);
    }

    #[test]
    fn host_filter() {
        let mut ws = WebServer::new();
        ws.handle(
            SimTime::EPOCH,
            Ipv4Addr::new(1, 1, 1, 1),
            "a.example",
            "/",
            None,
        );
        ws.handle(
            SimTime::EPOCH,
            Ipv4Addr::new(1, 1, 1, 1),
            "b.example",
            "/",
            None,
        );
        assert_eq!(ws.requests_for_host("a.example").count(), 1);
    }

    #[test]
    fn remove_route() {
        let mut ws = WebServer::new();
        ws.put("h", "/x", Response::ok("text/plain", b"y".to_vec()));
        assert!(ws.remove("h", "/x"));
        assert!(!ws.remove("h", "/x"));
        let r = ws.handle(SimTime::EPOCH, Ipv4Addr::new(1, 1, 1, 1), "h", "/x", None);
        assert_eq!(r.status, StatusCode::NOT_FOUND);
    }
}
