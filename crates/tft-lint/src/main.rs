//! The `tft-lint` binary: lint the workspace, print diagnostics, and
//! optionally emit the JSON report consumed by `scripts/check.sh`.
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tft_lint::{report_to_json, Baseline, Engine};

const USAGE: &str = "usage: tft-lint [--root DIR] [--json] [--json-out PATH] [--workers N] \
[--baseline PATH] [--list]

  --root DIR       workspace root (default: auto-detect from cwd)
  --json           print the JSON report to stdout instead of human output
  --json-out PATH  additionally write the JSON report to PATH
  --workers N      worker threads for the parallel stages (default: 1;
                   output is byte-identical at any worker count)
  --baseline PATH  pinned baseline: absorb triaged legacy findings, fail
                   on anything new or on stale baseline entries
  --list           list registered passes and exit";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut workers: usize = 1;
    let mut baseline_path: Option<PathBuf> = None;
    let mut list = false;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--json" => json = true,
            "--json-out" => match argv.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage_error("--json-out needs a value"),
            },
            "--workers" => match argv.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => return usage_error("--workers needs a positive integer"),
            },
            "--baseline" => match argv.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--list" => list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let mut engine = Engine::with_default_passes().with_workers(workers);
    if list {
        for pass in engine.passes() {
            println!("{:28} {}", pass.id(), pass.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("tft-lint: no workspace root found (pass --root DIR)");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tft-lint: failed to read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match Baseline::parse(&text) {
            Ok(b) => engine = engine.with_baseline(b),
            Err(e) => {
                eprintln!("tft-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = match engine.run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "tft-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let doc = report_to_json(&engine, &report);
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, doc.render_pretty() + "\n") {
            eprintln!("tft-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        emit(&doc.render_pretty());
    } else {
        for d in &report.diagnostics {
            emit(&d.to_string());
        }
        emit(&format!(
            "tft-lint: {} file(s) scanned, {} diagnostic(s), {} suppressed by reasoned allows, \
             {} absorbed by baseline",
            report.files_scanned,
            report.diagnostics.len(),
            report.suppressed,
            report.baselined
        ));
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Print a line to stdout, tolerating a closed pipe (e.g. `tft-lint | head`);
/// the exit code, not the stream, is the machine-readable contract.
fn emit(line: &str) {
    use std::io::Write;
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tft-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Ascend from the current directory to the first `Cargo.toml` declaring a
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if is_workspace_manifest(&manifest) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_manifest(path: &Path) -> bool {
    std::fs::read_to_string(path)
        .map(|t| t.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}
