//! Property tests for `substrate::json`, written on `substrate::qc` — this
//! file doubles as the integration test for the property framework itself.

use substrate::json::{self, Json, Num};
use substrate::qc::{self, alphabet, Config, Gen, TestResult};
use substrate::qc_assert_eq;

/// A generator of arbitrary JSON documents, bounded in depth and width so
/// cases stay small.
fn json_values(depth: u32) -> Gen<Json> {
    let scalars = vec![
        qc::just(Json::Null),
        qc::bools().map(Json::Bool),
        qc::any_u64().map(Json::uint),
        qc::ints(-1_000_000i64..=1_000_000).map(|v| Json::Num(Num::Int(v))),
        qc::floats(-1.0e9..1.0e9).map(Json::float),
        qc::string_of(alphabet::PRINTABLE, 0..12).map(Json::Str),
        // Exercise escapes: quotes, backslashes, control chars, non-ASCII.
        qc::string_of("\"\\\n\t\u{8}\u{c}\r\u{1}é€𝄞", 0..6).map(Json::Str),
    ];
    if depth == 0 {
        return qc::one_of(scalars);
    }
    let inner = json_values(depth - 1);
    let arr = qc::vec_of(inner.clone(), 0..4).map(Json::Arr);
    let obj = qc::vec_of(
        qc::tuple2(qc::string_of(alphabet::LOWER_ALNUM, 1..8), inner),
        0..4,
    )
    .map(|pairs| {
        // Duplicate keys are legal JSON but not round-trip stable under
        // last-wins readers; keep generated objects key-unique.
        let mut seen = std::collections::HashSet::new();
        Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .collect(),
        )
    });
    let mut choices = scalars;
    choices.push(arr);
    choices.push(obj);
    qc::one_of(choices)
}

#[test]
fn prop_render_parse_roundtrip() {
    qc::check(
        "json render/parse roundtrip",
        &Config::with_cases(256),
        &json_values(3),
        |doc| {
            let compact = doc.render();
            let back = match json::parse(&compact) {
                Ok(v) => v,
                Err(e) => return TestResult::Fail(format!("parse failed: {e} on {compact}")),
            };
            qc_assert_eq!(&back, doc);
            qc::pass()
        },
    );
}

#[test]
fn prop_pretty_roundtrip_matches_compact() {
    qc::check(
        "json pretty/compact agreement",
        &Config::with_cases(128),
        &json_values(3),
        |doc| {
            let pretty = doc.render_pretty();
            let back = match json::parse(&pretty) {
                Ok(v) => v,
                Err(e) => return TestResult::Fail(format!("parse failed: {e} on {pretty}")),
            };
            qc_assert_eq!(&back, doc);
            qc::pass()
        },
    );
}

#[test]
fn prop_u64_numbers_roundtrip_exactly() {
    // The reason Num has integer variants: seeds near u64::MAX must survive.
    qc::check(
        "u64 exactness",
        &Config::with_cases(256),
        &qc::any_u64(),
        |&n| {
            let doc = Json::uint(n).render();
            match json::parse(&doc) {
                Ok(v) => {
                    qc_assert_eq!(v.as_u64(), Some(n));
                    qc::pass()
                }
                Err(e) => TestResult::Fail(format!("{e}")),
            }
        },
    );
}

#[test]
fn prop_canonicalize_is_a_fixpoint_under_reparsing() {
    // The contract content-addressing rests on: canonicalize once and the
    // document is inert — parse(render_canonical(doc)) canonicalizes to
    // itself, and its canonical rendering never changes again.
    qc::check(
        "canonicalize fixpoint",
        &Config::with_cases(256),
        &json_values(3),
        |doc| {
            let canon = doc.canonicalize();
            qc_assert_eq!(&canon.canonicalize(), &canon);
            let rendered = canon.render_canonical();
            let back = match json::parse(&rendered) {
                Ok(v) => v,
                Err(e) => return TestResult::Fail(format!("parse failed: {e} on {rendered}")),
            };
            qc_assert_eq!(&back.canonicalize(), &canon);
            qc_assert_eq!(back.render_canonical(), rendered);
            qc::pass()
        },
    );
}

#[test]
fn prop_canonical_rendering_ignores_object_key_order() {
    // Shuffling top-level members must not change the canonical bytes —
    // the property that makes `stable64(render_canonical(..))` a usable
    // content address.
    let objects = qc::vec_of(
        qc::tuple2(qc::string_of(alphabet::LOWER_ALNUM, 1..8), json_values(1)),
        2..6,
    )
    .map(|pairs| {
        let mut seen = std::collections::HashSet::new();
        pairs
            .into_iter()
            .filter(|(k, _)| seen.insert(k.clone()))
            .collect::<Vec<_>>()
    });
    qc::check(
        "canonical key-order independence",
        &Config::with_cases(128),
        &qc::tuple2(objects, qc::any_u64()),
        |(members, salt)| {
            if members.len() < 2 {
                return TestResult::Discard;
            }
            let mut rotated = members.clone();
            let k = (*salt as usize % (rotated.len() - 1)) + 1;
            rotated.rotate_left(k);
            qc_assert_eq!(
                Json::Obj(rotated).render_canonical(),
                Json::Obj(members.clone()).render_canonical()
            );
            qc::pass()
        },
    );
}

#[test]
fn prop_parser_never_panics_on_garbage() {
    qc::check(
        "parser totality on garbage",
        &Config::with_cases(512),
        &qc::bytes(0..64),
        |bytes| {
            let s = String::from_utf8_lossy(bytes);
            let _ = json::parse(&s); // must return, not panic
            qc::pass()
        },
    );
}

#[test]
fn prop_parser_never_panics_on_corrupted_valid_json() {
    // Take a valid document, flip one byte, ensure the parser still
    // terminates with Ok or Err (it may legitimately still parse).
    qc::check(
        "parser totality on corruption",
        &Config::with_cases(256),
        &qc::tuple3(json_values(2), qc::any_usize(), qc::any_u8()),
        |(doc, pos, byte)| {
            let mut raw = doc.render().into_bytes();
            if raw.is_empty() {
                return TestResult::Discard;
            }
            let pos = pos % raw.len();
            raw[pos] = *byte;
            let s = String::from_utf8_lossy(&raw);
            let _ = json::parse(&s);
            qc::pass()
        },
    );
}

#[test]
fn malformed_documents_are_rejected() {
    for bad in [
        "",
        "   ",
        "{",
        "}",
        "[1,",
        "[1 2]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{a: 1}",
        "\"unterminated",
        "\"bad escape \\x\"",
        "\"half surrogate \\ud800\"",
        "01",
        "1.",
        ".5",
        "+1",
        "1e",
        "--1",
        "truefalse",
        "nul",
        "[1] trailing",
        "{\"a\":1,}",
        "[1,]",
        "\u{0}",
    ] {
        assert!(
            json::parse(bad).is_err(),
            "expected rejection of {bad:?}, got {:?}",
            json::parse(bad)
        );
    }
}

#[test]
fn deep_nesting_is_bounded_not_fatal() {
    // 1000 levels exceeds MAX_DEPTH; must be an error, not a stack overflow.
    let deep = "[".repeat(1000) + &"]".repeat(1000);
    assert!(json::parse(&deep).is_err());
    // ...while a modest depth is fine.
    let ok = "[".repeat(64) + &"]".repeat(64);
    assert!(json::parse(&ok).is_ok());
}
