//! TLS interception (§6): anti-virus products, content filters, and malware
//! that terminate TLS and present spoofed certificates.
//!
//! Behavioural knobs mirror the paper's findings:
//!
//! - **shared key** — all products except Avast reuse one public key for
//!   every spoofed certificate on a given host;
//! - **invalid-certificate policy** — Cyberoam/ESET/Kaspersky/McAfee/
//!   Fortigate re-sign *originally invalid* certificates with their trusted
//!   root (masking invalidity from the browser); Avast/BitDefender/Dr. Web
//!   re-sign them under a *different, untrusted* issuer; OpenDNS passes
//!   invalid certificates through untouched;
//! - **field copying** — the Cloudguard malware copies fields from the
//!   original certificate to look legitimate;
//! - **selectivity** — not every site's certificate is replaced.

use certs::{CertAuthority, Certificate, DistinguishedName, KeyId};
use netsim::rng::RngExt;
use netsim::{SimRng, SimTime};

/// What the interceptor does with an originally *invalid* server
/// certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidCertPolicy {
    /// Re-sign with the same (trusted) issuer as valid sites — hiding the
    /// invalidity from the browser (the dangerous behaviour the paper calls
    /// out).
    SpoofSameIssuer,
    /// Re-sign under a different, untrusted issuer so the browser still
    /// warns (Avast's "untrusted root" behaviour).
    SpoofAltIssuer(DistinguishedName),
    /// Leave invalid certificates untouched (OpenDNS).
    PassThrough,
}

/// Which connections get intercepted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selectivity {
    /// Every TLS connection.
    All,
    /// A deterministic per-hostname fraction of sites.
    PerSiteFraction(f64),
}

/// A TLS interceptor installed on one host (or operating for one network).
#[derive(Debug, Clone)]
pub struct TlsInterceptor {
    ca: CertAuthority,
    alt_ca: Option<CertAuthority>,
    /// One key reused for all spoofed certs on this host, or None for a
    /// fresh key per certificate (Avast).
    shared_key: Option<KeyId>,
    invalid_policy: InvalidCertPolicy,
    copy_fields: bool,
    selectivity: Selectivity,
    decision_rng: SimRng,
    spoof_rng: SimRng,
}

impl TlsInterceptor {
    /// Build an interceptor.
    ///
    /// * `issuer` — the Issuer Common Name that will appear on spoofed
    ///   certificates (the Table 8 signal).
    /// * `shared_key` — reuse one key per host iff true.
    /// * `copy_fields` — Cloudguard-style mimicry.
    pub fn new(
        issuer: DistinguishedName,
        shared_key: bool,
        invalid_policy: InvalidCertPolicy,
        copy_fields: bool,
        selectivity: Selectivity,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        let ca = CertAuthority::new_root(issuer, now, rng);
        // Pre-derive the shared key from the CA's own stream.
        let key = if shared_key {
            Some(KeyId(rng.random()))
        } else {
            None
        };
        let alt_ca = match &invalid_policy {
            InvalidCertPolicy::SpoofAltIssuer(dn) => {
                Some(CertAuthority::new_root(dn.clone(), now, rng))
            }
            _ => None,
        };
        TlsInterceptor {
            ca,
            alt_ca,
            shared_key: key,
            invalid_policy,
            copy_fields,
            selectivity,
            decision_rng: rng.fork("tls-decisions"),
            spoof_rng: rng.fork("tls-spoof-keys"),
        }
    }

    /// The root certificate this product installed into the host's trust
    /// store at install time (§6.2).
    pub fn installed_root(&self) -> Certificate {
        self.ca.cert.clone()
    }

    /// The issuer DN stamped on spoofed certificates.
    // Not a misnamed getter: the CA's *subject* is what appears in the
    // Issuer field of every certificate it signs.
    #[allow(clippy::misnamed_getters)]
    pub fn issuer(&self) -> &DistinguishedName {
        &self.ca.cert.subject
    }

    /// The shared per-host key, if this product uses one.
    pub fn shared_key(&self) -> Option<KeyId> {
        self.shared_key
    }

    /// Deterministic per-hostname interception decision.
    pub fn would_intercept(&self, hostname: &str) -> bool {
        match self.selectivity {
            Selectivity::All => true,
            Selectivity::PerSiteFraction(p) => {
                let mut r = self
                    .decision_rng
                    .fork_indexed("site", fnv(hostname.as_bytes()));
                r.random_bool(p)
            }
        }
    }

    /// Intercept a TLS handshake to `hostname` where the server presented
    /// `original` (validity pre-computed by the caller against the public
    /// root store). Returns the replacement chain, or `None` when this
    /// connection is passed through untouched.
    pub fn intercept(
        &mut self,
        hostname: &str,
        original: &[Certificate],
        original_valid: bool,
        now: SimTime,
    ) -> Option<Vec<Certificate>> {
        if !self.would_intercept(hostname) {
            return None;
        }
        let leaf = original.first()?;
        let key = self
            .shared_key
            .unwrap_or_else(|| KeyId(self.spoof_rng.random()));
        if original_valid {
            let spoof = self.ca.issue_spoof(leaf, key, now, self.copy_fields);
            return Some(vec![spoof, self.ca.cert.clone()]);
        }
        match &self.invalid_policy {
            InvalidCertPolicy::SpoofSameIssuer => {
                let spoof = self.ca.issue_spoof(leaf, key, now, self.copy_fields);
                Some(vec![spoof, self.ca.cert.clone()])
            }
            InvalidCertPolicy::SpoofAltIssuer(_) => {
                let alt = self.alt_ca.as_mut().expect("alt CA exists for this policy");
                let spoof = alt.issue_spoof(leaf, key, now, false);
                Some(vec![spoof, alt.cert.clone()])
            }
            InvalidCertPolicy::PassThrough => None,
        }
    }
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use certs::{self_signed_leaf, verify_chain, RootStore};
    use netsim::SimDuration;

    struct Setup {
        roots: RootStore,
        site_ca: CertAuthority,
        rng: SimRng,
        now: SimTime,
    }

    fn setup() -> Setup {
        let mut rng = SimRng::new(0x715);
        let now = SimTime::EPOCH + SimDuration::from_days(1200);
        let (roots, mut cas) = RootStore::os_x_like(3, SimTime::EPOCH, &mut rng);
        Setup {
            roots,
            site_ca: cas.remove(0),
            rng,
            now,
        }
    }

    fn av(setup: &mut Setup, shared: bool, policy: InvalidCertPolicy) -> TlsInterceptor {
        TlsInterceptor::new(
            DistinguishedName::cn_o("Kaspersky Anti-Virus Personal Root", "Kaspersky"),
            shared,
            policy,
            false,
            Selectivity::All,
            setup.now,
            &mut setup.rng,
        )
    }

    #[test]
    fn spoofed_cert_carries_interceptor_issuer() {
        let mut s = setup();
        let original = s.site_ca.issue_leaf("bank.example", s.now, &mut s.rng);
        let mut mitm = av(&mut s, true, InvalidCertPolicy::SpoofSameIssuer);
        let chain = mitm
            .intercept("bank.example", std::slice::from_ref(&original), true, s.now)
            .expect("intercepts all");
        assert_eq!(
            chain[0].issuer.common_name,
            "Kaspersky Anti-Virus Personal Root"
        );
        assert_eq!(chain[0].subject, original.subject);
        // Public roots reject the spoof…
        assert!(verify_chain(&chain, "bank.example", s.now, &s.roots).is_err());
        // …but the host that installed the product's root accepts it.
        let mut host_roots = s.roots.clone();
        host_roots.add(mitm.installed_root());
        assert_eq!(
            verify_chain(&chain, "bank.example", s.now, &host_roots),
            Ok(())
        );
    }

    #[test]
    fn shared_key_is_reused_across_sites() {
        let mut s = setup();
        let a = s.site_ca.issue_leaf("a.example", s.now, &mut s.rng);
        let b = s.site_ca.issue_leaf("b.example", s.now, &mut s.rng);
        let mut mitm = av(&mut s, true, InvalidCertPolicy::SpoofSameIssuer);
        let ca_chain = mitm.intercept("a.example", &[a], true, s.now).unwrap();
        let cb_chain = mitm.intercept("b.example", &[b], true, s.now).unwrap();
        assert_eq!(ca_chain[0].subject_key, cb_chain[0].subject_key);
    }

    #[test]
    fn avast_style_fresh_keys_differ() {
        let mut s = setup();
        let a = s.site_ca.issue_leaf("a.example", s.now, &mut s.rng);
        let b = s.site_ca.issue_leaf("b.example", s.now, &mut s.rng);
        let mut mitm = av(&mut s, false, InvalidCertPolicy::SpoofSameIssuer);
        let ca_chain = mitm.intercept("a.example", &[a], true, s.now).unwrap();
        let cb_chain = mitm.intercept("b.example", &[b], true, s.now).unwrap();
        assert_ne!(ca_chain[0].subject_key, cb_chain[0].subject_key);
    }

    #[test]
    fn invalid_cert_masked_by_same_issuer_policy() {
        let mut s = setup();
        let bad = self_signed_leaf("invalid1.example", s.now, &mut s.rng);
        let mut mitm = av(&mut s, true, InvalidCertPolicy::SpoofSameIssuer);
        let chain = mitm
            .intercept("invalid1.example", &[bad], false, s.now)
            .unwrap();
        let mut host_roots = s.roots.clone();
        host_roots.add(mitm.installed_root());
        // The browser now trusts a certificate for a site that was invalid:
        // the vulnerability §6.2 describes.
        assert_eq!(
            verify_chain(&chain, "invalid1.example", s.now, &host_roots),
            Ok(())
        );
    }

    #[test]
    fn invalid_cert_alt_issuer_still_warns() {
        let mut s = setup();
        let bad = self_signed_leaf("invalid1.example", s.now, &mut s.rng);
        let alt = DistinguishedName::cn("avast! Web/Mail Shield untrusted root");
        let mut mitm = av(
            &mut s,
            false,
            InvalidCertPolicy::SpoofAltIssuer(alt.clone()),
        );
        let chain = mitm
            .intercept("invalid1.example", &[bad], false, s.now)
            .unwrap();
        assert_eq!(chain[0].issuer, alt);
        let mut host_roots = s.roots.clone();
        host_roots.add(mitm.installed_root()); // main root installed, alt is not
        assert!(verify_chain(&chain, "invalid1.example", s.now, &host_roots).is_err());
    }

    #[test]
    fn passthrough_policy_leaves_invalid_untouched() {
        let mut s = setup();
        let bad = self_signed_leaf("blocked.example", s.now, &mut s.rng);
        let mut mitm = av(&mut s, true, InvalidCertPolicy::PassThrough);
        assert!(mitm
            .intercept("blocked.example", &[bad], false, s.now)
            .is_none());
    }

    #[test]
    fn cloudguard_copies_fields() {
        let mut s = setup();
        let original = s.site_ca.issue_leaf("bank.example", s.now, &mut s.rng);
        let mut mitm = TlsInterceptor::new(
            DistinguishedName::cn("Cloudguard.me"),
            true,
            InvalidCertPolicy::SpoofSameIssuer,
            true,
            Selectivity::All,
            s.now,
            &mut s.rng,
        );
        let chain = mitm
            .intercept("bank.example", std::slice::from_ref(&original), true, s.now)
            .unwrap();
        assert_eq!(chain[0].serial, original.serial);
        assert_eq!(chain[0].not_after, original.not_after);
        assert_eq!(chain[0].issuer.common_name, "Cloudguard.me");
    }

    #[test]
    fn selectivity_is_deterministic_per_site() {
        let mut s = setup();
        let mitm = TlsInterceptor::new(
            DistinguishedName::cn("OpenDNS Root Certificate Authority"),
            true,
            InvalidCertPolicy::PassThrough,
            false,
            Selectivity::PerSiteFraction(0.3),
            s.now,
            &mut s.rng,
        );
        let sites: Vec<String> = (0..200).map(|i| format!("site{i}.example")).collect();
        let first: Vec<bool> = sites.iter().map(|h| mitm.would_intercept(h)).collect();
        let second: Vec<bool> = sites.iter().map(|h| mitm.would_intercept(h)).collect();
        assert_eq!(first, second, "per-site decision must be stable");
        let hits = first.iter().filter(|b| **b).count();
        assert!((30..90).contains(&hits), "≈30% of 200, got {hits}");
    }

    #[test]
    fn empty_chain_not_intercepted() {
        let mut s = setup();
        let mut mitm = av(&mut s, true, InvalidCertPolicy::SpoofSameIssuer);
        assert!(mitm.intercept("x.example", &[], true, s.now).is_none());
    }
}
