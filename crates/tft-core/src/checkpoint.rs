//! Study checkpoint/restore: crash recovery for [`StudyDriver`].
//!
//! The paper's campaign ran for five days over a churning population; a
//! run of that scale must survive its own infrastructure dying. This module
//! serializes a [`StudyDriver`]'s resumable state — stage cursor, the
//! `WorldSpec` the study-start snapshot was built from, every byte of
//! absorbed evidence, and RNG/session watermarks — through the canonical
//! [`substrate::json`] layer as a [`StudyCheckpoint`], and rebuilds an
//! equivalent driver from it.
//!
//! ## Why restore is exact
//!
//! A stage-boundary driver in a standard (churn-free) study holds a very
//! particular world: the pristine study-start snapshot plus (a) a clock
//! advanced by absorbed shard time, (b) appended web/auth server-log
//! entries, and (c) billing deltas. All stage randomness comes from
//! per-shard forked RNGs derived from the study-start clock
//! (`ProbeScope::rng` in `exec`) — the live world's own RNG stream is
//! never consumed, its scheduler holds no pending events (monitor refetches
//! fire inside shard worlds), and its session table stays empty. So restore
//! is: rebuild the snapshot from the spec, advance the clock (which fires
//! nothing), splice the recorded evidence back in, and verify the RNG and
//! session watermarks match what the checkpoint pinned. Every subsequent
//! stage then forks from a byte-identical snapshot with byte-identical
//! absorbed state — the final report cannot differ from the uninterrupted
//! run's, at any worker count. Worlds with pending events (churn) refuse to
//! checkpoint rather than checkpoint wrongly.

use crate::config::StudyConfig;
use crate::exec::ExecOptions;
use crate::obs::{
    CertProbe, DnsDataset, DnsObservation, DnsOutcome, HttpDataset, HttpObservation, HttpsDataset,
    HttpsObservation, MonitorDataset, MonitorObservation, ObjectResult, ProbeObject, Quarantine,
    SiteClass,
};
use crate::quality::{DataQuality, QualityCounts};
use crate::study::{StudyDriver, StudyStage};
use dnswire::QueryLogEntry;
use netsim::SimTime;
use proxynet::{WebLogEntry, World};
use std::fmt;
use substrate::json::{FromJson, Json, JsonError, ToJson};
use substrate::{json_enum, json_struct};
use worldgen::WorldSpec;

/// Current checkpoint format version. Bumped on any incompatible change to
/// the serialized shape; restore refuses versions it does not understand.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A serialized stage-boundary snapshot of a [`StudyDriver`].
///
/// `(spec, checkpoint)` is the whole input of the remaining study: the spec
/// rebuilds the study-start world, the checkpoint replays everything the
/// interrupted run had absorbed. Round-trips through canonical JSON.
#[derive(Debug, Clone)]
pub struct StudyCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The spec the study-start snapshot was built from.
    pub spec: WorldSpec,
    /// The study's configuration.
    pub cfg: StudyConfig,
    /// Virtual time the study started (the snapshot's clock).
    pub started: SimTime,
    /// Virtual time at the checkpointed stage boundary.
    pub now: SimTime,
    /// The stage the next [`StudyDriver::step`] will run.
    pub next: StudyStage,
    /// Pinned world-RNG stream position (see [`World::rng_fingerprint`]).
    pub rng_fingerprint: u64,
    /// Pinned live-session count (see [`World::session_watermark`]).
    pub session_watermark: u64,
    /// Web-server log entries absorbed since study start.
    pub web_log: Vec<WebLogEntry>,
    /// Authoritative-DNS log entries absorbed since study start.
    pub auth_log: Vec<QueryLogEntry>,
    /// Per-customer billing deltas since study start, sorted by customer.
    pub billing: Vec<(String, u64)>,
    /// Completed DNS stage output, if that stage has run.
    pub dns_data: Option<DnsDataset>,
    /// Completed HTTP stage output, if that stage has run.
    pub http_data: Option<HttpDataset>,
    /// Completed HTTPS stage output, if that stage has run.
    pub https_data: Option<HttpsDataset>,
    /// Completed monitoring stage output, if that stage has run.
    pub monitor_data: Option<MonitorDataset>,
}

impl StudyCheckpoint {
    /// Render as canonical JSON (stable key order, no whitespace) — the
    /// form whose `stable64` hash identifies the checkpoint.
    pub fn to_canonical_json(&self) -> String {
        self.to_json().render_canonical()
    }

    /// Parse a checkpoint from JSON.
    pub fn from_json_str(input: &str) -> Result<StudyCheckpoint, JsonError> {
        substrate::json::from_str(input)
    }
}

/// Why a checkpoint could not be taken or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The study already ran to completion — there is nothing to resume;
    /// persist the rendered report instead.
    StudyComplete,
    /// The serialized version is not one this build understands.
    UnsupportedVersion(u32),
    /// The world holds pending scheduled events (e.g. churn toggles), so a
    /// clock-only restore would skip work. Such worlds refuse to
    /// checkpoint/restore rather than do so wrongly.
    PendingEvents,
    /// The rebuilt snapshot's clock does not match the checkpoint's
    /// recorded study start — the spec did not rebuild the same world.
    ClockMismatch {
        /// Clock recorded at study start.
        expected: SimTime,
        /// Clock of the rebuilt snapshot.
        found: SimTime,
    },
    /// The rebuilt world's RNG stream position diverged from the pinned
    /// fingerprint — the spec did not rebuild the same world.
    RngDiverged {
        /// Pinned fingerprint.
        expected: u64,
        /// Fingerprint of the rebuilt world.
        found: u64,
    },
    /// The rebuilt world's session count diverged from the pinned
    /// watermark.
    SessionDiverged {
        /// Pinned watermark.
        expected: u64,
        /// Watermark of the rebuilt world.
        found: u64,
    },
    /// The spec inside the checkpoint failed to rebuild a world.
    SpecRejected(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::StudyComplete => {
                write!(f, "study already complete; nothing to checkpoint or resume")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build understands {CHECKPOINT_VERSION})")
            }
            CheckpointError::PendingEvents => {
                write!(f, "world has pending scheduled events; checkpoint/restore requires an idle stage-boundary world")
            }
            CheckpointError::ClockMismatch { expected, found } => {
                write!(f, "rebuilt snapshot clock {found:?} does not match recorded study start {expected:?}")
            }
            CheckpointError::RngDiverged { expected, found } => {
                write!(
                    f,
                    "rebuilt world RNG fingerprint {found:#x} diverged from pinned {expected:#x}"
                )
            }
            CheckpointError::SessionDiverged { expected, found } => {
                write!(
                    f,
                    "rebuilt world session watermark {found} diverged from pinned {expected}"
                )
            }
            CheckpointError::SpecRejected(e) => write!(f, "checkpoint spec rejected: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl StudyDriver {
    /// Snapshot this driver's resumable state at a stage boundary.
    ///
    /// `spec` must be the spec the driver's world was built from — the
    /// checkpoint stores it so [`StudyDriver::restore`] can rebuild the
    /// study-start snapshot; restore verifies the rebuild against pinned
    /// RNG/session watermarks and fails loudly on mismatch.
    ///
    /// Non-destructive: the driver remains usable. Fails on a completed
    /// study ([`CheckpointError::StudyComplete`] — persist the report
    /// instead) and on worlds with pending events
    /// ([`CheckpointError::PendingEvents`]).
    pub fn checkpoint(&self, spec: &WorldSpec) -> Result<StudyCheckpoint, CheckpointError> {
        if self.next == StudyStage::Done {
            return Err(CheckpointError::StudyComplete);
        }
        if !self.world.is_idle() {
            return Err(CheckpointError::PendingEvents);
        }
        Ok(StudyCheckpoint {
            version: CHECKPOINT_VERSION,
            spec: spec.clone(),
            cfg: self.cfg.clone(),
            started: self.started,
            now: self.world.now(),
            next: self.next,
            rng_fingerprint: self.world.rng_fingerprint(),
            session_watermark: self.world.session_watermark(),
            web_log: self.world.web_log_since(&self.mark).to_vec(),
            auth_log: self.world.auth_log_since(&self.mark).to_vec(),
            billing: self.world.billing_delta(&self.mark),
            dns_data: self.dns_data.clone(),
            http_data: self.http_data.clone(),
            https_data: self.https_data.clone(),
            monitor_data: self.monitor_data.clone(),
        })
    }

    /// Rebuild a driver from a checkpoint, reconstructing the study-start
    /// snapshot with `worldgen::build` from the embedded spec.
    ///
    /// The restored driver renders a report byte-identical to the
    /// uninterrupted run's at any worker count (`exec_opts` is a pure
    /// throughput knob, exactly as at first construction).
    pub fn restore(
        cp: &StudyCheckpoint,
        exec_opts: &ExecOptions,
    ) -> Result<StudyDriver, CheckpointError> {
        let built = worldgen::build(&cp.spec);
        StudyDriver::restore_with_world(cp, built.world, exec_opts)
    }

    /// [`StudyDriver::restore`] with a caller-supplied pristine study-start
    /// world (e.g. a gateway's world cache), skipping the worldgen rebuild.
    /// The world must be exactly what `worldgen::build(&cp.spec)` produces;
    /// the pinned watermarks verify as much.
    pub fn restore_with_world(
        cp: &StudyCheckpoint,
        pristine: World,
        exec_opts: &ExecOptions,
    ) -> Result<StudyDriver, CheckpointError> {
        if cp.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(cp.version));
        }
        if cp.next == StudyStage::Done {
            return Err(CheckpointError::StudyComplete);
        }
        if !pristine.is_idle() {
            return Err(CheckpointError::PendingEvents);
        }
        if pristine.now() != cp.started {
            return Err(CheckpointError::ClockMismatch {
                expected: cp.started,
                found: pristine.now(),
            });
        }
        let base = pristine;
        let mark = base.evidence_mark();
        let mut world = base.clone();
        // Advance the clock to the checkpointed boundary. The scheduler is
        // idle (checked above), so this moves time and fires nothing —
        // exactly the state the interrupted driver's world was in.
        if let Some(ahead) = cp.now.checked_since(world.now()) {
            if !ahead.is_zero() {
                world.advance(ahead);
            }
        } else {
            return Err(CheckpointError::ClockMismatch {
                expected: cp.now,
                found: world.now(),
            });
        }
        world.restore_evidence(&cp.web_log, &cp.auth_log, &cp.billing);
        let rng_found = world.rng_fingerprint();
        if rng_found != cp.rng_fingerprint {
            return Err(CheckpointError::RngDiverged {
                expected: cp.rng_fingerprint,
                found: rng_found,
            });
        }
        let sessions_found = world.session_watermark();
        if sessions_found != cp.session_watermark {
            return Err(CheckpointError::SessionDiverged {
                expected: cp.session_watermark,
                found: sessions_found,
            });
        }
        Ok(StudyDriver {
            world,
            base,
            mark,
            cfg: cp.cfg.clone(),
            workers: exec_opts.workers,
            started: cp.started,
            next: cp.next,
            dns_data: cp.dns_data.clone(),
            http_data: cp.http_data.clone(),
            https_data: cp.https_data.clone(),
            monitor_data: cp.monitor_data.clone(),
            report: None,
            fault: None,
        })
    }
}

// -- JSON codecs for the observation model -----------------------------------
//
// Kept here rather than scattered through `obs.rs`: the checkpoint is the
// only consumer of serialized observations, and the byte-payload fields use
// a hex encoding this module owns.

/// Lowercase hex of a byte payload (page bodies, modified objects) —
/// roughly half the size of a JSON number array and trivially canonical.
fn hex_of(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        s.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble < 16"));
    }
    s
}

/// Inverse of [`hex_of`]; rejects odd lengths and non-hex characters.
fn hex_to_bytes(s: &str) -> Result<Vec<u8>, JsonError> {
    if !s.len().is_multiple_of(2) {
        return Err(JsonError::shape("hex payload has odd length"));
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let nibble = |d: u8| -> Result<u8, JsonError> {
            match d {
                b'0'..=b'9' => Ok(d - b'0'),
                b'a'..=b'f' => Ok(d - b'a' + 10),
                _ => Err(JsonError::shape("hex payload has non-hex character")),
            }
        };
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

impl ToJson for DnsOutcome {
    fn to_json(&self) -> Json {
        match self {
            DnsOutcome::NotHijacked => Json::Obj(vec![("hijacked".to_string(), Json::Null)]),
            DnsOutcome::Hijacked { content } => {
                Json::Obj(vec![("hijacked".to_string(), Json::Str(hex_of(content)))])
            }
        }
    }
}

impl FromJson for DnsOutcome {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.get("hijacked") {
            Some(Json::Null) => Ok(DnsOutcome::NotHijacked),
            Some(Json::Str(hex)) => Ok(DnsOutcome::Hijacked {
                content: hex_to_bytes(hex)?,
            }),
            _ => Err(JsonError::shape(
                "DnsOutcome: expected object with `hijacked` null or hex string",
            )),
        }
    }
}

impl ToJson for ObjectResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("object".to_string(), self.object.to_json()),
            ("original_len".to_string(), self.original_len.to_json()),
            ("received_len".to_string(), self.received_len.to_json()),
            (
                "modified_body".to_string(),
                match &self.modified_body {
                    Some(body) => Json::Str(hex_of(body)),
                    None => Json::Null,
                },
            ),
            ("quarantine".to_string(), self.quarantine.to_json()),
        ])
    }
}

impl FromJson for ObjectResult {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| substrate::json::missing_field("ObjectResult", name))
        };
        let modified_body = match field("modified_body")? {
            Json::Null => None,
            Json::Str(hex) => Some(hex_to_bytes(hex)?),
            other => {
                return Err(JsonError::shape(format!(
                    "ObjectResult.modified_body: expected null or hex string, got {other:?}"
                )))
            }
        };
        Ok(ObjectResult {
            object: ProbeObject::from_json(field("object")?)?,
            original_len: usize::from_json(field("original_len")?)?,
            received_len: usize::from_json(field("received_len")?)?,
            modified_body,
            quarantine: Option::<Quarantine>::from_json(field("quarantine")?)?,
        })
    }
}

json_enum!(ProbeObject {
    Html,
    Jpeg,
    Js,
    Css
});
json_enum!(Quarantine {
    Truncated,
    Inconsistent,
});
json_enum!(SiteClass {
    Popular,
    International,
    Invalid,
});
json_enum!(StudyStage {
    Dns,
    Http,
    Https,
    Monitor,
    Analyze,
    Done,
});

json_struct!(QualityCounts {
    ok,
    retried,
    retry_attempts,
    timed_out,
    truncated,
    quarantined,
    failed,
});
json_struct!(DataQuality { per_country });

json_struct!(DnsObservation {
    zid,
    node_ip,
    resolver_ip,
    country,
    outcome,
});
json_struct!(DnsDataset {
    observations,
    filtered_same_anycast,
    duplicates,
    discarded,
    samples_issued,
    quality,
});
json_struct!(HttpObservation {
    zid,
    node_ip,
    results,
});
json_struct!(HttpDataset {
    observations,
    samples_issued,
    skipped_quota,
    quality,
});
json_struct!(CertProbe { host, class, chain });
json_struct!(HttpsObservation {
    zid,
    country,
    exit_ip,
    probes,
    escalated,
});
json_struct!(HttpsDataset {
    observations,
    skipped_unranked,
    samples_issued,
    quality,
});
json_struct!(MonitorObservation {
    zid,
    reported_exit_ip,
    domain,
    own_request: None,
    unexpected,
});
json_struct!(MonitorDataset {
    observations,
    window_hours,
    samples_issued,
    quality,
});

json_struct!(StudyConfig {
    customer,
    max_samples,
    saturation_window,
    saturation_min_new,
    min_nodes_per_country,
    min_nodes_per_dns_server,
    hijacking_server_share,
    min_nodes_per_domain,
    min_nodes_per_as,
    http_nodes_per_as,
    http_phase2_nodes,
    http_phase2_budget,
    monitor_window_hours,
    per_node_byte_cap,
});

json_struct!(StudyCheckpoint {
    version,
    spec,
    cfg,
    started,
    now,
    next,
    rng_fingerprint,
    session_watermark,
    web_log,
    auth_log,
    billing,
    dns_data,
    http_data,
    https_data,
    monitor_data,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips() {
        for payload in [
            vec![],
            vec![0u8],
            vec![0xde, 0xad, 0xbe, 0xef],
            (0..=255u8).collect(),
        ] {
            let hex = hex_of(&payload);
            assert_eq!(hex_to_bytes(&hex).unwrap(), payload);
        }
        assert!(hex_to_bytes("abc").is_err(), "odd length rejected");
        assert!(hex_to_bytes("zz").is_err(), "non-hex rejected");
        assert!(hex_to_bytes("AB").is_err(), "uppercase is not canonical");
    }

    #[test]
    fn outcome_and_object_result_roundtrip() {
        let hijacked = DnsOutcome::Hijacked {
            content: b"<html>ads</html>".to_vec(),
        };
        let back: DnsOutcome =
            substrate::json::from_str(&hijacked.to_json().render_canonical()).unwrap();
        assert_eq!(back, hijacked);
        let clean: DnsOutcome =
            substrate::json::from_str(&DnsOutcome::NotHijacked.to_json().render_canonical())
                .unwrap();
        assert_eq!(clean, DnsOutcome::NotHijacked);

        let result = ObjectResult {
            object: ProbeObject::Jpeg,
            original_len: 39_000,
            received_len: 12_000,
            modified_body: Some(vec![1, 2, 3]),
            quarantine: None,
        };
        let doc = result.to_json().render_canonical();
        let back: ObjectResult = substrate::json::from_str(&doc).unwrap();
        assert_eq!(back.object, ProbeObject::Jpeg);
        assert_eq!(back.modified_body, Some(vec![1, 2, 3]));
        assert_eq!(back.quarantine, None);
    }

    #[test]
    fn checkpoint_roundtrips_through_canonical_json() {
        let spec = worldgen::smoke_spec(21);
        let world = worldgen::build(&spec).world;
        let cfg = StudyConfig {
            min_nodes_per_country: 5,
            min_nodes_per_dns_server: 3,
            ..StudyConfig::default()
        };
        let mut driver = StudyDriver::new(world, cfg, &ExecOptions::with_workers(1));
        driver.step(); // run the DNS stage so the checkpoint carries data
        let cp = driver.checkpoint(&spec).expect("checkpointable");
        assert_eq!(cp.next, StudyStage::Http);
        assert!(cp.dns_data.is_some());
        let json = cp.to_canonical_json();
        let back = StudyCheckpoint::from_json_str(&json).expect("parse back");
        assert_eq!(
            back.to_canonical_json(),
            json,
            "canonical JSON is a fixpoint"
        );
    }

    #[test]
    fn completed_study_refuses_to_checkpoint() {
        let spec = worldgen::smoke_spec(21);
        let world = worldgen::build(&spec).world;
        let cfg = StudyConfig {
            min_nodes_per_country: 5,
            min_nodes_per_dns_server: 3,
            ..StudyConfig::default()
        };
        let mut driver = StudyDriver::new(world, cfg, &ExecOptions::with_workers(1));
        driver.run_to_completion();
        assert_eq!(
            driver.checkpoint(&spec).err(),
            Some(CheckpointError::StudyComplete)
        );
    }

    #[test]
    fn restore_rejects_wrong_version_and_foreign_worlds() {
        let spec = worldgen::smoke_spec(21);
        let world = worldgen::build(&spec).world;
        let cfg = StudyConfig {
            min_nodes_per_country: 5,
            min_nodes_per_dns_server: 3,
            ..StudyConfig::default()
        };
        let driver = StudyDriver::new(world, cfg, &ExecOptions::with_workers(1));
        let cp = driver.checkpoint(&spec).unwrap();

        let mut wrong_version = cp.clone();
        wrong_version.version = CHECKPOINT_VERSION + 1;
        assert_eq!(
            StudyDriver::restore(&wrong_version, &ExecOptions::with_workers(1))
                .err()
                .expect("must reject"),
            CheckpointError::UnsupportedVersion(CHECKPOINT_VERSION + 1)
        );

        // A world built from a different spec has a different RNG stream.
        let foreign = worldgen::build(&worldgen::smoke_spec(22)).world;
        match StudyDriver::restore_with_world(&cp, foreign, &ExecOptions::with_workers(1)).err() {
            Some(CheckpointError::RngDiverged { .. }) => {}
            other => panic!("expected RngDiverged, got {other:?}"),
        }
    }
}
