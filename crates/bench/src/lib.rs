//! # tft-bench — reproduction harness
//!
//! Shared plumbing for the `repro` binary and the Criterion benches: world
//! construction at a chosen scale, full-study execution, and rendering of
//! every table and figure with paper values alongside.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tft_core::{render_tables, run_study, score_report, scoring, StudyConfig, StudyReport};
use worldgen::{build, paper_spec, BuiltWorld, GroundTruth};

/// Default scale for the harness: ~38k nodes, builds and runs in well under
/// a minute, keeps every table group above its threshold.
pub const DEFAULT_SCALE: f64 = 0.05;

/// One full harness run.
pub struct HarnessRun {
    /// The study's outputs.
    pub report: StudyReport,
    /// The planted truth (scoring only).
    pub truth: GroundTruth,
    /// The scorecard.
    pub card: tft_core::ScoreCard,
    /// The SMTP future-work extension's analysis.
    pub smtp: tft_core::analysis::smtp::SmtpAnalysis,
    /// Scale used.
    pub scale: f64,
    /// Seed used.
    pub seed: u64,
}

/// Build the calibrated world and run the complete study, plus the SMTP
/// future-work extension.
pub fn run_full(scale: f64, seed: u64) -> HarnessRun {
    let BuiltWorld { mut world, truth } = build(&paper_spec(scale, seed));
    let cfg = StudyConfig::scaled(scale);
    let report = run_study(&mut world, &cfg);
    let smtp_data = tft_core::smtp_exp::run(&mut world, &cfg);
    let smtp = tft_core::analysis::smtp::analyze(&smtp_data, &world, &cfg);
    let card = score_report(&report, &truth);
    HarnessRun {
        report,
        truth,
        card,
        smtp,
        scale,
        seed,
    }
}

/// Run the complete study over an explicit spec (e.g. loaded from a file).
pub fn run_full_spec(spec: &worldgen::WorldSpec) -> HarnessRun {
    let BuiltWorld { mut world, truth } = build(spec);
    let cfg = StudyConfig::scaled(spec.scale);
    let report = run_study(&mut world, &cfg);
    let smtp_data = tft_core::smtp_exp::run(&mut world, &cfg);
    let smtp = tft_core::analysis::smtp::analyze(&smtp_data, &world, &cfg);
    let card = score_report(&report, &truth);
    HarnessRun {
        report,
        truth,
        card,
        smtp,
        scale: spec.scale,
        seed: spec.seed,
    }
}

/// Render the full text report: all tables, figure 5, scoring.
pub fn render_all(run: &HarnessRun) -> String {
    let mut s = format!(
        "TFT reproduction — scale {} (≈{} nodes), seed {:#x}\n",
        run.scale, run.truth.total_nodes, run.seed
    );
    s.push_str(&render_tables(&run.report));
    s.push_str(&tft_core::analysis::smtp::render(&run.smtp));
    s.push_str(&tft_core::report::figures::figure5(&run.report.monitor));
    s.push_str(&scoring::render(&run.card));
    s
}

/// Render the headline paper-vs-measured comparison as a markdown table —
/// the core of EXPERIMENTS.md, regenerated from a live run.
pub fn render_markdown(run: &HarnessRun) -> String {
    use std::fmt::Write as _;
    use worldgen::calibration::headline;
    let r = &run.report;
    let mut s = format!(
        "## Headline comparison (scale {}, seed {:#x}, {} simulated nodes)\n\n\
         | quantity | paper | measured |\n|---|---|---|\n",
        run.scale, run.seed, run.truth.total_nodes
    );
    let pct = |x: f64| format!("{:.2}%", x * 100.0);
    let rows: Vec<(&str, String, String)> = vec![
        (
            "NXDOMAIN hijack rate",
            pct(headline::DNS_HIJACK_RATE),
            pct(r.dns.hijacked as f64 / r.dns.nodes.max(1) as f64),
        ),
        (
            "hijack attribution (ISP share)",
            pct(headline::DNS_ATTRIB_ISP),
            pct(r.dns.attribution.shares().0),
        ),
        (
            "HTML modification rate",
            pct(headline::HTML_MOD_RATE),
            pct(r.http.html_modified as f64 / r.http.nodes.max(1) as f64),
        ),
        (
            "image transcoding rate",
            pct(headline::IMAGE_MOD_RATE),
            pct(r.http.image_modified as f64 / r.http.nodes.max(1) as f64),
        ),
        (
            "certificate replacement rate",
            pct(headline::CERT_REPLACE_RATE),
            pct(r.https.replaced_nodes as f64 / r.https.nodes.max(1) as f64),
        ),
        (
            "content monitoring rate",
            pct(headline::MONITOR_RATE),
            pct(r.monitor.monitored_nodes as f64 / r.monitor.nodes.max(1) as f64),
        ),
        (
            "STARTTLS stripped (extension)",
            "—".into(),
            pct(run.smtp.starttls_missing as f64 / run.smtp.nodes.max(1) as f64),
        ),
    ];
    for (name, paper, measured) in rows {
        writeln!(s, "| {name} | {paper} | {measured} |").unwrap();
    }
    writeln!(
        s,
        "\nScorecard: DNS {} / HTML {} / image {} / certs {} / monitoring {}",
        run.card.dns, run.card.http_html, run.card.http_image, run.card.https, run.card.monitor
    )
    .unwrap();
    s
}

/// Render figures 1–4 from the demonstration world.
pub fn render_timeline_figures() -> String {
    let mut world = tft_core::report::figures::demo_world();
    let mut s = String::new();
    s.push_str(&tft_core::report::figures::figure1(&mut world));
    s.push('\n');
    s.push_str(&tft_core::report::figures::figure2(&mut world));
    s.push('\n');
    s.push_str(&tft_core::report::figures::figure3(&mut world));
    s.push('\n');
    s.push_str(&tft_core::report::figures::figure4(&mut world));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_renders_everything() {
        let run = run_full(0.002, 0xB_E7C);
        assert!(run.report.dns.nodes > 300);
        let text = render_all(&run);
        for needle in [
            "Table 1",
            "Table 9",
            "STARTTLS stripping",
            "Figure 5",
            "Scoring vs planted ground truth",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
        let md = render_markdown(&run);
        assert!(md.contains("| NXDOMAIN hijack rate |"));
        assert!(md.contains("Scorecard:"));
    }

    #[test]
    fn timeline_figures_render() {
        let text = render_timeline_figures();
        for needle in [
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "hijacks NXDOMAIN",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
