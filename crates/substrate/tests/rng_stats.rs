//! Statistical sanity and stability tests for `substrate::rng`.
//!
//! These are not a PRNG test battery (xoshiro256++ has its own published
//! analysis); they are guardrails that the *integration* is right — no
//! truncated state, no biased range mapping, no accidental stream change.

use substrate::rng::{mix64, RngExt, SplitMix64, Xoshiro256pp};

/// The first outputs for seed 0 are pinned. If this test ever fails, the
/// generator changed and every golden value in the workspace is invalid —
/// that is a compatibility break, not a refactor.
#[test]
fn golden_stream_seed_zero() {
    let mut r = Xoshiro256pp::seed_from_u64(0);
    let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    let mut again = Xoshiro256pp::seed_from_u64(0);
    let got2: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
    assert_eq!(got, got2);
    // Self-consistency golden: computed once at introduction, pinned forever.
    let expected: Vec<u64> = vec![
        5987356902031041503,
        7051070477665621255,
        6633766593972829180,
        211316841551650330,
    ];
    assert_eq!(
        got, expected,
        "xoshiro256++ stream changed — compatibility break"
    );
}

#[test]
fn mix64_is_a_bijection_on_samples() {
    // Distinct inputs must produce distinct outputs (injectivity spot check).
    let mut seen = std::collections::HashSet::new();
    for i in 0u64..10_000 {
        assert!(seen.insert(mix64(i)));
    }
}

#[test]
fn splitmix_decorrelates_adjacent_seeds() {
    // Even seed, seed+1 should share no outputs in a short window.
    let a: Vec<u64> = {
        let mut s = SplitMix64::new(1);
        (0..64).map(|_| s.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut s = SplitMix64::new(2);
        (0..64).map(|_| s.next_u64()).collect()
    };
    assert!(a.iter().all(|x| !b.contains(x)));
}

#[test]
fn uniform_ints_hit_every_bucket() {
    let mut r = Xoshiro256pp::seed_from_u64(0xB0);
    const BUCKETS: usize = 16;
    const DRAWS: usize = 32_000;
    let mut counts = [0usize; BUCKETS];
    for _ in 0..DRAWS {
        counts[r.random_range(0..BUCKETS)] += 1;
    }
    let expected = DRAWS / BUCKETS; // 2000
    for (i, &c) in counts.iter().enumerate() {
        // ±25% is ~11 sigma for a binomial with n=32k, p=1/16: a real
        // uniformity bug lands far outside, noise never does.
        assert!(
            (expected * 3 / 4..=expected * 5 / 4).contains(&c),
            "bucket {i}: {c} vs expected {expected}"
        );
    }
}

#[test]
fn unit_floats_mean_is_centered() {
    let mut r = Xoshiro256pp::seed_from_u64(0xF0);
    const DRAWS: usize = 100_000;
    let sum: f64 = (0..DRAWS).map(|_| r.random::<f64>()).sum();
    let mean = sum / DRAWS as f64;
    assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
}

#[test]
fn random_bool_tracks_probability() {
    let mut r = Xoshiro256pp::seed_from_u64(0xB001);
    for p in [0.01, 0.25, 0.5, 0.9] {
        const DRAWS: usize = 50_000;
        let hits = (0..DRAWS).filter(|_| r.random_bool(p)).count();
        let frac = hits as f64 / DRAWS as f64;
        assert!((frac - p).abs() < 0.02, "p={p}: observed {frac}");
    }
}

#[test]
fn full_domain_range_is_not_truncated() {
    // A `1u16..` range must reach the high half of the domain.
    let mut r = Xoshiro256pp::seed_from_u64(0xCAFE);
    let mut high = 0;
    for _ in 0..1000 {
        let v: u16 = r.random_range(1..);
        if v > u16::MAX / 2 {
            high += 1;
        }
    }
    assert!(high > 300, "only {high}/1000 draws in the top half");
}

#[test]
fn signed_ranges_cover_both_signs() {
    let mut r = Xoshiro256pp::seed_from_u64(0x51);
    let (mut neg, mut pos) = (0, 0);
    for _ in 0..1000 {
        let v: i64 = r.random_range(-1000..=1000);
        assert!((-1000..=1000).contains(&v));
        if v < 0 {
            neg += 1;
        }
        if v > 0 {
            pos += 1;
        }
    }
    assert!(neg > 300 && pos > 300, "neg={neg} pos={pos}");
}

#[test]
fn shuffle_moves_mass() {
    // Across many shuffles of 0..8, each value should occupy each position
    // roughly uniformly.
    let mut r = Xoshiro256pp::seed_from_u64(0x5417);
    const N: usize = 8;
    const ROUNDS: usize = 8000;
    let mut at = [[0usize; N]; N];
    for _ in 0..ROUNDS {
        let mut v: Vec<usize> = (0..N).collect();
        r.shuffle(&mut v);
        for (pos, &val) in v.iter().enumerate() {
            at[val][pos] += 1;
        }
    }
    let expected = ROUNDS / N;
    for (val, row) in at.iter().enumerate() {
        for (pos, &c) in row.iter().enumerate() {
            assert!(
                (expected / 2..=expected * 2).contains(&c),
                "value {val} at position {pos}: {c} (expected ~{expected})"
            );
        }
    }
}
