//! Content-monitoring analysis (§7.2): entity attribution by source AS,
//! refetch-delay distributions (Figure 5), VPN detection, and ISP-level
//! monitoring shares.

use crate::config::StudyConfig;
use crate::obs::MonitorDataset;
use inetdb::{Asn, CountryCode};
use netsim::Cdf;
use proxynet::{World, ZId};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One monitoring entity (Table 9 row).
#[derive(Debug, Clone)]
pub struct EntityRow {
    /// Entity name, from the organization owning the refetch sources.
    pub name: String,
    /// Distinct refetch source addresses.
    pub source_ips: usize,
    /// Monitored exit nodes.
    pub nodes: usize,
    /// Distinct monitored-node ASes.
    pub node_ases: usize,
    /// Distinct monitored-node countries.
    pub node_countries: usize,
    /// Signed refetch delays in seconds (refetch − own request; negative =
    /// fetched before the user's request, Bluecoat-style).
    pub delays_secs: Vec<f64>,
    /// Typical unexpected requests per monitored node.
    pub requests_per_node: f64,
    /// All monitored nodes share the entity's own organization (ISP-level
    /// monitoring, §7.2.2).
    pub isp_level: bool,
    /// Share of the ISP's measured nodes that are monitored (only
    /// meaningful when `isp_level`).
    pub isp_share: f64,
    /// Monitored nodes whose own requests arrived from the entity's
    /// network instead of their reported address (VPN routing, AnchorFree).
    pub vpn_nodes: usize,
}

impl EntityRow {
    /// Fraction of refetches arriving before the user's own request.
    pub fn prefetch_fraction(&self) -> f64 {
        if self.delays_secs.is_empty() {
            return 0.0;
        }
        self.delays_secs.iter().filter(|d| **d < 0.0).count() as f64 / self.delays_secs.len() as f64
    }

    /// CDF over the positive delays (the Figure 5 curve).
    pub fn delay_cdf(&self) -> Option<Cdf> {
        let pos: Vec<f64> = self
            .delays_secs
            .iter()
            .copied()
            .filter(|d| *d > 0.0)
            .collect();
        if pos.is_empty() {
            None
        } else {
            Some(Cdf::new(pos))
        }
    }
}

/// Full monitoring analysis output.
#[derive(Debug, Default)]
pub struct MonitorAnalysis {
    /// Nodes measured.
    pub nodes: usize,
    /// Distinct node ASes.
    pub ases: usize,
    /// Distinct node countries.
    pub countries: usize,
    /// Nodes with at least one unexpected request.
    pub monitored_nodes: usize,
    /// Distinct unexpected-request source addresses.
    pub unexpected_sources: usize,
    /// Source-AS groups.
    pub source_as_groups: usize,
    /// Entity rows, most monitored nodes first (Table 9).
    pub entities: Vec<EntityRow>,
}

/// The §7.1 discovery observation: during *earlier* experiments, some
/// unique probe domains received more requests than the one our client
/// issued — that anomaly is how the paper found content monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryScan {
    /// Unique probe domains seen in the log.
    pub probe_domains: usize,
    /// Domains with requests from more than one source address.
    pub multi_source_domains: usize,
}

/// Scan a web log for the §7.1 anomaly across domains matching
/// `is_probe_host` (e.g. the DNS experiment's `d1-*` names).
pub fn discovery_scan<'a>(
    log: impl Iterator<Item = &'a proxynet::WebLogEntry>,
    is_probe_host: impl Fn(&str) -> bool,
) -> DiscoveryScan {
    let mut sources: BTreeMap<&str, BTreeSet<Ipv4Addr>> = BTreeMap::new();
    for e in log {
        if is_probe_host(&e.host) {
            sources.entry(&e.host).or_default().insert(e.src);
        }
    }
    DiscoveryScan {
        probe_domains: sources.len(),
        multi_source_domains: sources.values().filter(|s| s.len() > 1).count(),
    }
}

/// Run the analysis.
pub fn analyze(data: &MonitorDataset, world: &World, _cfg: &StudyConfig) -> MonitorAnalysis {
    let reg = &world.registry;
    let mut out = MonitorAnalysis {
        nodes: data.observations.len(),
        ..Default::default()
    };
    let mut node_ases: BTreeSet<Asn> = BTreeSet::new();
    let mut node_countries: BTreeSet<CountryCode> = BTreeSet::new();
    let mut all_sources: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut source_ases: BTreeSet<Asn> = BTreeSet::new();
    // Measured nodes per organization (for the ISP-share denominators).
    let mut measured_per_org: BTreeMap<u32, usize> = BTreeMap::new();

    struct EntityAgg {
        name: String,
        org: u32,
        sources: BTreeSet<Ipv4Addr>,
        nodes: BTreeSet<ZId>,
        node_ases: BTreeSet<Asn>,
        node_countries: BTreeSet<CountryCode>,
        node_orgs: BTreeSet<u32>,
        delays: Vec<f64>,
        requests: usize,
        vpn_nodes: usize,
    }
    let mut entities: BTreeMap<u32, EntityAgg> = BTreeMap::new();

    for obs in &data.observations {
        let node_asn = reg.ip_to_asn(obs.reported_exit_ip).unwrap_or(Asn(0));
        let node_cc = reg.country_of_ip(obs.reported_exit_ip);
        node_ases.insert(node_asn);
        if let Some(cc) = node_cc {
            node_countries.insert(cc);
        }
        let node_org = reg.org_of_ip(obs.reported_exit_ip).map(|o| o.id.0);
        if let Some(org) = node_org {
            *measured_per_org.entry(org).or_insert(0) += 1;
        }
        if obs.unexpected.is_empty() {
            continue;
        }
        out.monitored_nodes += 1;
        // VPN detection: the node's own request reached us from an address
        // other than the one the proxy service reports (§7.2.1).
        let vpn_org = obs.own_request.as_ref().and_then(|own| {
            if own.src != obs.reported_exit_ip {
                reg.org_of_ip(own.src).map(|o| o.id.0)
            } else {
                None
            }
        });
        for e in &obs.unexpected {
            all_sources.insert(e.src);
            if let Some(asn) = reg.ip_to_asn(e.src) {
                source_ases.insert(asn);
            }
            let Some(org) = reg.org_of_ip(e.src) else {
                continue;
            };
            let agg = entities.entry(org.id.0).or_insert_with(|| EntityAgg {
                name: org.name.trim_end_matches(" Infrastructure").to_string(),
                org: org.id.0,
                sources: BTreeSet::new(),
                nodes: BTreeSet::new(),
                node_ases: BTreeSet::new(),
                node_countries: BTreeSet::new(),
                node_orgs: BTreeSet::new(),
                delays: Vec::new(),
                requests: 0,
                vpn_nodes: 0,
            });
            agg.sources.insert(e.src);
            agg.requests += 1;
            let newly = agg.nodes.insert(obs.zid);
            agg.node_ases.insert(node_asn);
            if let Some(cc) = node_cc {
                agg.node_countries.insert(cc);
            }
            if let Some(org) = node_org {
                agg.node_orgs.insert(org);
            }
            if newly && vpn_org == Some(agg.org) {
                agg.vpn_nodes += 1;
            }
            if let Some(own) = &obs.own_request {
                let delay_ms = e.at.as_millis() as f64 - own.at.as_millis() as f64;
                agg.delays.push(delay_ms / 1000.0);
            }
        }
    }
    out.ases = node_ases.len();
    out.countries = node_countries.len();
    out.unexpected_sources = all_sources.len();
    out.source_as_groups = source_ases.len();

    out.entities = entities
        .into_values()
        .map(|a| {
            let isp_level = a.node_orgs.len() == 1 && a.node_orgs.contains(&a.org);
            let isp_share = if isp_level {
                let measured = measured_per_org.get(&a.org).copied().unwrap_or(0);
                if measured > 0 {
                    a.nodes.len() as f64 / measured as f64
                } else {
                    0.0
                }
            } else {
                0.0
            };
            EntityRow {
                name: a.name,
                source_ips: a.sources.len(),
                nodes: a.nodes.len(),
                node_ases: a.node_ases.len(),
                node_countries: a.node_countries.len(),
                requests_per_node: a.requests as f64 / a.nodes.len().max(1) as f64,
                delays_secs: a.delays,
                isp_level,
                isp_share,
                vpn_nodes: a.vpn_nodes,
            }
        })
        .collect();
    out.entities
        .sort_by(|a, b| b.nodes.cmp(&a.nodes).then(a.name.cmp(&b.name)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::MonitorObservation;
    use crate::report::figures::demo_world;
    use netsim::SimTime;
    use proxynet::WebLogEntry;

    fn entry(at_ms: u64, src: Ipv4Addr, host: &str, ua: Option<&str>) -> WebLogEntry {
        WebLogEntry {
            at: SimTime::from_millis(at_ms),
            src,
            host: host.into(),
            path: "/".into(),
            user_agent: ua.map(|s| s.to_string()),
        }
    }

    #[test]
    fn entity_grouping_and_delays() {
        let world = demo_world();
        let monitor_src = world.monitor_entities()[0].source_ips[0];
        let node = world.node(proxynet::NodeId(1));
        let data = MonitorDataset {
            observations: vec![MonitorObservation {
                zid: node.zid,
                reported_exit_ip: node.ip,
                domain: "m1.tft-probe.example".into(),
                own_request: Some(entry(
                    1_000,
                    node.ip,
                    "m1.tft-probe.example",
                    Some("Hola/1.108"),
                )),
                unexpected: vec![
                    entry(
                        31_000,
                        monitor_src,
                        "m1.tft-probe.example",
                        Some("DemoAV/1.0"),
                    ),
                    entry(
                        500_000,
                        monitor_src,
                        "m1.tft-probe.example",
                        Some("DemoAV/1.0"),
                    ),
                ],
            }],
            window_hours: 24,
            samples_issued: 1,
            quality: Default::default(),
        };
        let cfg = crate::config::StudyConfig::default();
        let a = analyze(&data, &world, &cfg);
        assert_eq!(a.monitored_nodes, 1);
        assert_eq!(a.entities.len(), 1);
        let e = &a.entities[0];
        assert_eq!(e.name, "Demo AV Cloud");
        assert_eq!(e.nodes, 1);
        assert_eq!(e.source_ips, 1);
        assert_eq!(e.delays_secs.len(), 2);
        assert!((e.delays_secs[0] - 30.0).abs() < 1e-9);
        assert!((e.delays_secs[1] - 499.0).abs() < 1e-9);
        assert_eq!(e.requests_per_node, 2.0);
        assert!(!e.isp_level);
        assert_eq!(e.vpn_nodes, 0);
    }

    #[test]
    fn prefetch_counts_negative_delays() {
        let world = demo_world();
        let monitor_src = world.monitor_entities()[0].source_ips[0];
        let node = world.node(proxynet::NodeId(1));
        let data = MonitorDataset {
            observations: vec![MonitorObservation {
                zid: node.zid,
                reported_exit_ip: node.ip,
                domain: "m2.tft-probe.example".into(),
                own_request: Some(entry(
                    10_000,
                    node.ip,
                    "m2.tft-probe.example",
                    Some("Hola/1.108"),
                )),
                unexpected: vec![
                    entry(9_500, monitor_src, "m2.tft-probe.example", None),
                    entry(40_000, monitor_src, "m2.tft-probe.example", None),
                ],
            }],
            window_hours: 24,
            samples_issued: 1,
            quality: Default::default(),
        };
        let cfg = crate::config::StudyConfig::default();
        let a = analyze(&data, &world, &cfg);
        let e = &a.entities[0];
        assert!((e.prefetch_fraction() - 0.5).abs() < 1e-9);
        let cdf = e.delay_cdf().expect("one positive delay");
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn unmonitored_nodes_produce_no_entities() {
        let world = demo_world();
        let node = world.node(proxynet::NodeId(0));
        let data = MonitorDataset {
            observations: vec![MonitorObservation {
                zid: node.zid,
                reported_exit_ip: node.ip,
                domain: "m3.tft-probe.example".into(),
                own_request: Some(entry(
                    1_000,
                    node.ip,
                    "m3.tft-probe.example",
                    Some("Hola/1.108"),
                )),
                unexpected: vec![],
            }],
            window_hours: 24,
            samples_issued: 1,
            quality: Default::default(),
        };
        let cfg = crate::config::StudyConfig::default();
        let a = analyze(&data, &world, &cfg);
        assert_eq!(a.monitored_nodes, 0);
        assert!(a.entities.is_empty());
    }

    #[test]
    fn discovery_scan_counts_multi_source_domains() {
        let src_a = Ipv4Addr::new(10, 0, 0, 1);
        let src_b = Ipv4Addr::new(10, 0, 0, 2);
        let log = [
            entry(1, src_a, "d1-1.x", None),
            entry(2, src_a, "d1-2.x", None),
            entry(3, src_b, "d1-2.x", None),
            entry(4, src_a, "other.example", None),
            entry(5, src_b, "other.example", None),
        ];
        let scan = discovery_scan(log.iter(), |h| h.starts_with("d1-"));
        assert_eq!(scan.probe_domains, 2);
        assert_eq!(scan.multi_source_domains, 1);
    }
}
