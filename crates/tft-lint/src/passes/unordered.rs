//! `no-unordered-iteration`: hash containers are banned workspace-wide by
//! default; keyed-lookup-only modules opt out explicitly.
//!
//! `std::collections::HashMap`/`HashSet` use `RandomState`, so iteration
//! order differs between instances even within one process. Any map that is
//! ever iterated on the way to rendered output threatens the byte-identical
//! guarantee. Rather than chase individual `.iter()` sites (easy to evade
//! via `for`, `extend`, collect, …), the pass bans the *type names*
//! outright.
//!
//! PRs 3, 4, and 6 each hand-extended the old allow-list scope
//! (`study.rs`, then `campaign.rs`, then all of `tft-serve`), which meant
//! every new crate started *outside* the net until someone remembered to
//! add it. The polarity is now inverted: every production source file is
//! in scope, and modules that use hash containers strictly as keyed
//! lookup stores (never iterated toward output) appear in [`OPT_OUTS`]
//! with a written justification — same discipline as inline allows and
//! baseline entries. Moving a file off the list (or iterating where the
//! reason says you don't) is a one-line diff that a reviewer can see.

use super::{code_indices, in_src};
use crate::engine::{Diagnostic, Pass, SourceFile};
use crate::lexer::TokKind;

/// Forbid `HashMap`/`HashSet` in production code, minus reasoned opt-outs.
pub struct NoUnorderedIteration;

/// Files allowed to use hash containers, each with the reason why their
/// usage cannot reach rendered output. Paths are workspace-relative.
pub const OPT_OUTS: [(&str, &str); 20] = [
    (
        "crates/substrate/src/intern.rs",
        "interner index: string-to-id point lookup; enumeration goes through the insertion-ordered strings Vec",
    ),
    (
        "crates/certs/src/store.rs",
        "certificate store: lookup by key only; chain output is rebuilt in issuance order",
    ),
    (
        "crates/dnswire/src/cache.rs",
        "resolver cache: point lookups by name; eviction scans are order-insensitive counters",
    ),
    (
        "crates/dnswire/src/wire.rs",
        "name-compression offset map: lookup during encode; offsets derive from write order",
    ),
    (
        "crates/inetdb/src/registry.rs",
        "AS/prefix registry: membership and point lookup only; enumeration goes through sorted Vecs",
    ),
    (
        "crates/middlebox/src/image.rs",
        "image transform memo: content-hash keyed lookup; results keyed, never enumerated",
    ),
    (
        "crates/middlebox/src/monitor.rs",
        "monitor rule index: per-domain point lookup on the request path",
    ),
    (
        "crates/netsim/src/latency.rs",
        "latency model memo: (src,dst) point lookup; samples drawn via SimRng, not iteration",
    ),
    (
        "crates/netsim/src/sched.rs",
        "event scheduler: cancellation set is membership-only; firing order comes from the BinaryHeap",
    ),
    (
        "crates/proxynet/src/servers.rs",
        "origin/server registry: host-keyed point lookup on the request path",
    ),
    (
        "crates/proxynet/src/session.rs",
        "session table: cookie-keyed point lookup; expiry sweeps collect into sorted Vecs",
    ),
    (
        "crates/proxynet/src/smtp_flow.rs",
        "mailbox index: recipient-keyed point lookup only",
    ),
    (
        "crates/proxynet/src/world.rs",
        "world wiring: host and exit lookups by id; enumeration goes through pre-sorted rosters",
    ),
    (
        "crates/tft-core/src/crawl.rs",
        "visited-set during crawl: membership test only; the frontier itself is an ordered queue",
    ),
    (
        "crates/tft-core/src/ethics.rs",
        "opt-out registry: membership test per target; never enumerated",
    ),
    (
        "crates/tft-core/src/http_exp.rs",
        "header memo: point lookup per probe; observation rows are appended in probe order",
    ),
    (
        "crates/tft-core/src/monitor_exp.rs",
        "monitor lookup tables: point lookup per probe; datasets are appended in probe order",
    ),
    (
        "crates/tft-core/src/scoring.rs",
        "ground-truth index: membership tests against truth sets; scored rows keep dataset order",
    ),
    (
        "crates/worldgen/src/build.rs",
        "build-time dedup sets: membership only; emitted entities are sorted before output",
    ),
    (
        "crates/worldgen/src/validate.rs",
        "validation dedup sets: membership/uniqueness checks only; errors are collected in input order",
    ),
];

impl Pass for NoUnorderedIteration {
    fn id(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "forbid HashMap/HashSet in all production source (workspace-wide), minus \
         reasoned keyed-lookup-only opt-outs; use BTreeMap/BTreeSet or an \
         explicit sort before rendering"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        in_src(file) && !OPT_OUTS.iter().any(|&(path, _)| path == file.rel_path)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for idx in code_indices(file) {
            let t = &file.tokens[idx];
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text(&file.text);
            if name == "HashMap" || name == "HashSet" {
                let ordered = if name == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                };
                out.push(Diagnostic {
                    pass: self.id().into(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{name} has per-instance random iteration order and this file has no \
                         keyed-lookup-only opt-out — use {ordered}, sort before rendering, or \
                         add an opt-out with a written reason"
                    ),
                });
            }
        }
    }
}
