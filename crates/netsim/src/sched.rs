//! Discrete-event scheduler.
//!
//! A classic calendar queue over a binary heap: events carry a fire time and
//! a monotonically increasing sequence number, so simultaneous events fire in
//! the order they were scheduled (deterministic tie-breaking).

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier handed back by [`Scheduler::schedule`], usable to cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An event popped from the scheduler.
#[derive(Debug, PartialEq, Eq)]
pub struct Fired<E> {
    /// When the event fired (the scheduler's clock has advanced to this).
    pub at: SimTime,
    /// The scheduled payload.
    pub payload: E,
}

/// Deterministic discrete-event scheduler with a virtual clock.
///
/// `Clone` (for `E: Clone`) snapshots the entire pending-event state; the
/// parallel study executor uses this to give each shard an independent
/// world copy whose future events replay identically.
#[derive(Clone)]
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    next_id: u64,
    heap: BinaryHeap<Entry<E>>,
    cancelled: std::collections::HashSet<EventId>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// A scheduler starting at the simulation epoch.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::EPOCH,
            seq: 0,
            next_id: 0,
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedule `payload` to fire `after` the current time.
    pub fn schedule(&mut self, after: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + after, payload)
    }

    /// Schedule `payload` at an absolute time.
    ///
    /// # Panics
    /// Panics if `at` is in the past: scheduling into the past would silently
    /// reorder causality.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(at >= self.now, "cannot schedule an event in the past");
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            id,
            payload,
        });
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // Lazy deletion: mark and skip at pop time.
        if self.heap.iter().any(|e| e.id == id) {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    /// Pop the next event, advancing the clock to its fire time.
    // Deliberately named like `Iterator::next`: popping advances the clock,
    // which an `Iterator` impl would hide behind `for` desugaring.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Fired<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            return Some(Fired {
                at: entry.at,
                payload: entry.payload,
            });
        }
        None
    }

    /// Pop the next event only if it fires at or before `deadline`.
    /// The clock advances to the event time if one is returned, otherwise to
    /// `deadline`.
    pub fn next_until(&mut self, deadline: SimTime) -> Option<Fired<E>> {
        loop {
            match self.heap.peek() {
                Some(entry) if entry.at <= deadline => {
                    let entry = self.heap.pop().expect("peeked entry vanished");
                    if self.cancelled.remove(&entry.id) {
                        continue;
                    }
                    self.now = entry.at;
                    return Some(Fired {
                        at: entry.at,
                        payload: entry.payload,
                    });
                }
                _ => {
                    if deadline > self.now {
                        self.now = deadline;
                    }
                    return None;
                }
            }
        }
    }

    /// Advance the clock without firing events (e.g. client-side think time).
    ///
    /// # Panics
    /// Panics if doing so would skip over a pending event, which would break
    /// the event ordering contract.
    pub fn advance(&mut self, by: SimDuration) {
        let target = self.now + by;
        if let Some(entry) = self.heap.peek() {
            assert!(
                entry.at >= target || self.cancelled.contains(&entry.id),
                "advance would skip a pending event at {}",
                entry.at
            );
        }
        self.now = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimDuration::from_millis(30), "c");
        s.schedule(SimDuration::from_millis(10), "a");
        s.schedule(SimDuration::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.next().map(|f| f.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::from_millis(30));
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule(SimDuration::from_millis(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.next().map(|f| f.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut s = Scheduler::new();
        let keep = s.schedule(SimDuration::from_millis(1), "keep");
        let drop = s.schedule(SimDuration::from_millis(2), "drop");
        assert!(s.cancel(drop));
        assert!(!s.cancel(drop), "double-cancel reports false");
        let _ = keep;
        let order: Vec<_> = std::iter::from_fn(|| s.next().map(|f| f.payload)).collect();
        assert_eq!(order, vec!["keep"]);
    }

    #[test]
    fn next_until_respects_deadline() {
        let mut s = Scheduler::new();
        s.schedule(SimDuration::from_millis(10), 1u32);
        s.schedule(SimDuration::from_millis(100), 2u32);
        let deadline = SimTime::from_millis(50);
        assert_eq!(s.next_until(deadline).map(|f| f.payload), Some(1));
        assert_eq!(s.next_until(deadline), None);
        // Clock parked at the deadline, later event still pending.
        assert_eq!(s.now(), deadline);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule(SimDuration::from_millis(10), ());
        s.next();
        s.schedule_at(SimTime::from_millis(5), ());
    }

    #[test]
    fn advance_moves_clock() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.advance(SimDuration::from_secs(3));
        assert_eq!(s.now(), SimTime::from_millis(3000));
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn advance_cannot_skip_events() {
        let mut s = Scheduler::new();
        s.schedule(SimDuration::from_millis(5), ());
        s.advance(SimDuration::from_millis(10));
    }
}
