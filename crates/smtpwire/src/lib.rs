//! # smtpwire — minimal SMTP (RFC 5321 subset)
//!
//! The paper closes §3.4 with: *"we could extend our methodologies for VPNs
//! that allow arbitrary traffic to be sent, enabling us to capture
//! end-to-end connectivity violations in protocols like SMTP; we leave
//! exploring this further to future work."* This crate is that future work's
//! protocol plane: enough SMTP to run an EHLO capability exchange and probe
//! the STARTTLS upgrade point — the part of SMTP middleboxes notoriously
//! tamper with (STARTTLS stripping downgrades mail to plaintext).

//!
//! ```
//! use smtpwire::{Capabilities, Command, MailServer};
//! let server = MailServer::new("mx1.example");
//! let reply = server.handle(&Command::Ehlo("probe.example".into()));
//! assert!(Capabilities::from_ehlo(&reply).starttls);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod reply;
pub mod server;

pub use command::Command;
pub use reply::{Capabilities, Reply};
pub use server::MailServer;
