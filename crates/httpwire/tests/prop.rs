//! Property-based tests: HTTP parse/serialize roundtrips and parser totality.

use httpwire::{chunked, Headers, Method, Request, Response, StatusCode, Target, Uri};
use substrate::qc::{self, alphabet, Config, Gen};
use substrate::{qc_assert, qc_assert_eq};

const ALPHA: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
const TOKEN_TAIL: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-";

fn cfg() -> Config {
    Config::with_cases(192)
}

/// `[A-Za-z][A-Za-z0-9-]{0,15}` — a header field name.
fn tokens() -> Gen<String> {
    qc::tuple2(
        qc::string_of(ALPHA, 1..=1),
        qc::string_of(TOKEN_TAIL, 0..16),
    )
    .map(|(head, tail)| head + &tail)
}

/// Visible ASCII at the edges, printable ASCII inside — values are trimmed
/// on parse, so no leading/trailing space; never CR/LF.
fn header_values() -> Gen<String> {
    qc::one_of(vec![
        qc::string_of(alphabet::VISIBLE, 1..=1),
        qc::tuple3(
            qc::string_of(alphabet::VISIBLE, 1..=1),
            qc::string_of(alphabet::PRINTABLE, 0..31),
            qc::string_of(alphabet::VISIBLE, 1..=1),
        )
        .map(|(a, mid, z)| a + &mid + &z),
    ])
}

fn headers() -> Gen<Headers> {
    qc::vec_of(qc::tuple2(tokens(), header_values()), 0..8).map(|pairs| {
        let mut h = Headers::new();
        for (n, v) in pairs {
            // Avoid framing headers; encode() manages those.
            if !n.eq_ignore_ascii_case("content-length")
                && !n.eq_ignore_ascii_case("transfer-encoding")
            {
                h.append(&n, &v);
            }
        }
        h
    })
}

/// `[a-z0-9]([a-z0-9.-]{0,20}[a-z0-9])?` — a hostname.
fn hosts() -> Gen<String> {
    qc::one_of(vec![
        qc::string_of(alphabet::LOWER_ALNUM, 1..=1),
        qc::tuple3(
            qc::string_of(alphabet::LOWER_ALNUM, 1..=1),
            qc::string_of("abcdefghijklmnopqrstuvwxyz0123456789.-", 0..21),
            qc::string_of(alphabet::LOWER_ALNUM, 1..=1),
        )
        .map(|(a, mid, z)| a + &mid + &z),
    ])
}

fn bodies() -> Gen<Vec<u8>> {
    qc::bytes(0..256)
}

/// Visible ASCII without space — path characters after the leading `/`.
fn paths() -> Gen<String> {
    qc::string_of(alphabet::VISIBLE, 0..31).map(|tail| format!("/{tail}"))
}

#[test]
fn request_roundtrip_origin_form() {
    qc::check(
        "request origin-form roundtrip",
        &cfg(),
        &qc::tuple4(hosts(), paths(), headers(), bodies()),
        |(host, path, headers, body)| {
            let mut req = Request::origin_get(host, path);
            for (n, v) in headers.iter() {
                req.headers.append(n, v);
            }
            if !body.is_empty() {
                req.method = Method::Post;
                req.body = body.clone();
            }
            let wire = req.encode();
            let (parsed, consumed) = match Request::parse(&wire) {
                Ok(r) => r,
                Err(e) => return qc::TestResult::Fail(format!("parse: {e:?}")),
            };
            qc_assert_eq!(consumed, wire.len());
            qc_assert_eq!(parsed.method, req.method);
            qc_assert_eq!(parsed.target, req.target);
            qc_assert_eq!(parsed.body, req.body);
            qc::pass()
        },
    );
}

#[test]
fn request_roundtrip_absolute_form() {
    qc::check(
        "request absolute-form roundtrip",
        &cfg(),
        &qc::tuple3(hosts(), qc::ints(1u16..), bodies()),
        |(host, port, body)| {
            let uri = Uri::parse(&format!("http://{host}:{port}/probe")).unwrap();
            let mut req = Request::proxy_get(uri.clone());
            req.body = body.clone();
            let (parsed, _) = match Request::parse(&req.encode()) {
                Ok(r) => r,
                Err(e) => return qc::TestResult::Fail(format!("parse: {e:?}")),
            };
            match parsed.target {
                Target::Absolute(u) => {
                    qc_assert_eq!(u.effective_port(), uri.effective_port());
                    qc_assert_eq!(u.host, uri.host);
                }
                other => return qc::TestResult::Fail(format!("wrong target form: {other:?}")),
            }
            qc::pass()
        },
    );
}

#[test]
fn response_roundtrip() {
    qc::check(
        "response roundtrip",
        &cfg(),
        &qc::tuple3(qc::ints(100u16..600), headers(), bodies()),
        |(status, headers, body)| {
            let mut resp = Response::new(StatusCode(*status), body.clone());
            resp.headers = headers.clone();
            let wire = resp.encode();
            let (parsed, consumed) = match Response::parse(&wire) {
                Ok(r) => r,
                Err(e) => return qc::TestResult::Fail(format!("parse: {e:?}")),
            };
            qc_assert_eq!(consumed, wire.len());
            qc_assert_eq!(parsed.status, resp.status);
            qc_assert_eq!(parsed.body, resp.body);
            qc::pass()
        },
    );
}

#[test]
fn parsers_total_on_garbage() {
    qc::check(
        "parser totality on garbage",
        &cfg(),
        &qc::bytes(0..512),
        |bytes| {
            let _ = Request::parse(bytes);
            let _ = Response::parse(bytes);
            qc::pass()
        },
    );
}

#[test]
fn parsers_total_on_corruption() {
    qc::check(
        "parser totality on corruption",
        &cfg(),
        &qc::tuple3(bodies(), qc::any_usize(), qc::ints(1u8..)),
        |(body, idx, flip)| {
            let resp = Response::ok("application/octet-stream", body.clone());
            let mut wire = resp.encode();
            let i = idx % wire.len();
            wire[i] ^= flip;
            let _ = Response::parse(&wire);
            qc::pass()
        },
    );
}

#[test]
fn chunked_roundtrip() {
    qc::check(
        "chunked roundtrip",
        &cfg(),
        &qc::tuple2(bodies(), qc::ints(1usize..64)),
        |(body, chunk)| {
            let encoded = chunked::encode(body, *chunk);
            let (decoded, consumed) = match chunked::decode(&encoded) {
                Ok(r) => r,
                Err(e) => return qc::TestResult::Fail(format!("decode: {e:?}")),
            };
            qc_assert_eq!(&decoded, body);
            qc_assert_eq!(consumed, encoded.len());
            qc::pass()
        },
    );
}

#[test]
fn uri_roundtrip() {
    qc::check(
        "uri roundtrip",
        &cfg(),
        &qc::tuple3(
            hosts(),
            qc::ints(1u16..),
            qc::string_of("abcdefghijklmnopqrstuvwxyz0123456789/._-", 0..21),
        ),
        |(host, port, tail)| {
            let s = format!("http://{host}:{port}/{tail}");
            let uri = match Uri::parse(&s) {
                Ok(u) => u,
                Err(e) => return qc::TestResult::Fail(format!("parse {s:?}: {e:?}")),
            };
            let again = Uri::parse(&uri.to_string()).unwrap();
            qc_assert!(
                uri == again,
                "reparse changed the uri: {uri:?} vs {again:?}"
            );
            qc::pass()
        },
    );
}
