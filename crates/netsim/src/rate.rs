//! Token-bucket rate limiting (the smoltcp examples' `--tx-rate-limit` /
//! `--shaping-interval` knobs).
//!
//! Virtual-time native: the bucket refills as a function of [`SimTime`], so
//! a shaped link inside the simulation behaves exactly like one outside it.

use crate::time::{SimDuration, SimTime};

/// A token bucket: `capacity` tokens, refilled in full every
/// `refill_interval`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
    refill_interval: SimDuration,
    last_refill: SimTime,
}

impl TokenBucket {
    /// A bucket starting full.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `refill_interval` is zero — both
    /// describe a link that can never transmit, which is a configuration
    /// error, not a shaping policy.
    pub fn new(capacity: u64, refill_interval: SimDuration) -> Self {
        assert!(capacity > 0, "zero-capacity bucket");
        assert!(!refill_interval.is_zero(), "zero refill interval");
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_interval,
            last_refill: SimTime::EPOCH,
        }
    }

    /// Tokens currently available at `now`.
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        self.tokens
    }

    /// Try to take `n` tokens at `now`. Returns true on success.
    pub fn try_take(&mut self, now: SimTime, n: u64) -> bool {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// The earliest time at or after `now` when `n` tokens will be
    /// available, or `None` if `n` exceeds the bucket capacity (it would
    /// never fit).
    pub fn next_available(&mut self, now: SimTime, n: u64) -> Option<SimTime> {
        if n > self.capacity {
            return None;
        }
        self.refill(now);
        if self.tokens >= n {
            return Some(now);
        }
        // The bucket refills in full at interval boundaries.
        Some(self.last_refill + self.refill_interval)
    }

    fn refill(&mut self, now: SimTime) {
        if let Some(elapsed) = now.checked_since(self.last_refill) {
            let intervals = elapsed.as_millis() / self.refill_interval.as_millis();
            if intervals > 0 {
                self.tokens = self.capacity;
                self.last_refill += self.refill_interval * intervals;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(4, SimDuration::from_millis(50));
        assert_eq!(b.available(t(0)), 4);
        assert!(b.try_take(t(0), 3));
        assert_eq!(b.available(t(0)), 1);
        assert!(!b.try_take(t(0), 2));
        assert!(b.try_take(t(0), 1));
    }

    #[test]
    fn refills_at_interval_boundaries() {
        let mut b = TokenBucket::new(2, SimDuration::from_millis(50));
        assert!(b.try_take(t(0), 2));
        assert!(!b.try_take(t(49), 1), "not yet refilled");
        assert!(b.try_take(t(50), 2), "full refill at the boundary");
        assert!(b.try_take(t(175), 2), "skipping intervals still refills");
    }

    #[test]
    fn next_available_predicts_refill() {
        let mut b = TokenBucket::new(2, SimDuration::from_millis(50));
        assert_eq!(b.next_available(t(0), 1), Some(t(0)));
        b.try_take(t(0), 2);
        assert_eq!(b.next_available(t(10), 1), Some(t(50)));
        assert_eq!(b.next_available(t(10), 3), None, "exceeds capacity");
    }

    #[test]
    fn sustained_rate_is_bounded() {
        // 4 packets per 50 ms bucket → at most 80 packets per second.
        let mut b = TokenBucket::new(4, SimDuration::from_millis(50));
        let mut sent = 0;
        for ms in 0..1000 {
            if b.try_take(t(ms), 1) {
                sent += 1;
            }
        }
        assert!(sent <= 80, "sent {sent} in 1s");
        assert!(sent >= 76, "shaping should not starve: {sent}");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn rejects_zero_capacity() {
        TokenBucket::new(0, SimDuration::from_millis(50));
    }
}
