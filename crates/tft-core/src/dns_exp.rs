//! The DNS NXDOMAIN-hijacking experiment (§4.1, Figure 2).
//!
//! For each sampled exit node, two unique names under our authoritative
//! zone:
//!
//! 1. **d₁** resolves for everyone. Fetching `http://d₁/` through the node
//!    reveals (a) the node's resolver address in our DNS log, (b) the
//!    node's IP in our web log, and (c) its zID in the debug header.
//! 2. **d₂** answers NXDOMAIN to everyone *except* the super proxy's
//!    Google resolver (so the super proxy agrees to forward). Fetching
//!    `http://d₂/` with the same session then either fails with a DNS
//!    error (no hijacking) or returns substituted content (hijacked).

use crate::config::StudyConfig;
use crate::crawl::Sampler;
use crate::ethics::ByteBudget;
use crate::exec::ProbeScope;
use crate::obs::{DnsDataset, DnsObservation, DnsOutcome};
use crate::quality::{DataQuality, ProbeOutcome};
use dnswire::{server::inetdb_net::Net, AnswerOverride};
use httpwire::{Response, Uri};
use inetdb::CountryCode;
use proxynet::{ProxyError, UsernameOptions, World};
use std::net::Ipv4Addr;

/// Sampler-seed salt (XORed with virtual time at experiment start).
const SEED_SALT: u64 = 0xD45;

/// The Google anycast range the super proxy's queries arrive from
/// (74.125.0.0/16; the paper determined this empirically). Exposed so the
/// analysis layer can recognize Google-DNS-configured nodes.
pub fn google_anycast_net() -> Net {
    Net::new(Ipv4Addr::new(74, 125, 0, 0), 16)
}

/// The d₂ allow-predicate must name the super proxy's *specific* anycast
/// instance, not the whole Google range: exit nodes configured with Google
/// DNS also query from 74.125.0.0/16, and a /16 predicate would hand them
/// the valid answer — making every Google-DNS node look hijacked. The
/// instance is determined empirically from the d₁ query log (footnote 8's
/// remaining ambiguity — nodes behind the *same* instance — is filtered in
/// step 2).
fn super_proxy_net(observed_src: Ipv4Addr) -> Net {
    Net::new(observed_src, 32)
}

/// Record a delivered probe pair: `Ok` when no attempt across the d₁/d₂
/// fetches failed, `Retried(n)` otherwise.
fn record_delivered(quality: &mut DataQuality, country: CountryCode, failed_attempts: usize) {
    let outcome = if failed_attempts == 0 {
        ProbeOutcome::Ok
    } else {
        ProbeOutcome::Retried(failed_attempts)
    };
    quality.record(country, outcome);
}

/// Tiny page served on probe names (the DNS experiment needs content, not
/// size).
fn probe_page() -> Response {
    Response::ok(
        "text/html",
        b"<html><body>tft dns probe</body></html>".to_vec(),
    )
}

/// Methodology variants, for ablation studies.
#[derive(Debug, Clone, Copy, Default)]
pub struct DnsExpOptions {
    /// Use the naive 74.125.0.0/16 allow-predicate for d₂ instead of the
    /// super proxy's specific anycast instance. This reproduces the failure
    /// mode footnote 8 warns about: every Google-DNS exit node then
    /// resolves d₂ successfully and is misclassified as hijacked.
    pub naive_google_predicate: bool,
}

/// Run the experiment until saturation or budget exhaustion.
pub fn run(world: &mut World, cfg: &StudyConfig) -> DnsDataset {
    run_with(world, cfg, DnsExpOptions::default())
}

/// Run with explicit methodology options (ablations).
pub fn run_with(world: &mut World, cfg: &StudyConfig, exp_opts: DnsExpOptions) -> DnsDataset {
    let scope = ProbeScope::full(world);
    run_scoped(world, cfg, exp_opts, scope)
}

/// Run one population shard (parallel executor entry point).
pub(crate) fn run_shard(world: &mut World, cfg: &StudyConfig, scope: ProbeScope) -> DnsDataset {
    run_scoped(world, cfg, DnsExpOptions::default(), scope)
}

// tft-lint: hot-root — per-probe DNS experiment loop
fn run_scoped(
    world: &mut World,
    cfg: &StudyConfig,
    exp_opts: DnsExpOptions,
    scope: ProbeScope,
) -> DnsDataset {
    let mut sampler = Sampler::new(
        &scope.counts,
        scope.rng(world.now().as_millis(), SEED_SALT),
        cfg.saturation_window,
        cfg.saturation_min_new,
    )
    .with_session_base(scope.session_base);
    let mut budget = ByteBudget::new(cfg.per_node_byte_cap);
    let mut data = DnsDataset::default();
    // One reusable option set per shard: the customer string is owned
    // once, not re-allocated per sample (DESIGN.md §10).
    let mut opts = UsernameOptions::new(&cfg.customer).dns_remote();
    let apex = world.auth_apex().clone();
    let super_dns = world.super_proxy_dns_src();
    // Per-probe name scratch: cleared and rewritten each iteration so the
    // loop stops allocating once the buffers reach steady-state capacity.
    use std::fmt::Write as _;
    let mut label = String::new();
    let mut d1s = String::new();
    let mut d2s = String::new();

    for i in 0..cfg.max_samples {
        if sampler.saturated() {
            break;
        }
        let (country, session) = sampler.next_probe();
        data.samples_issued += 1;
        let dup_before = data.duplicates;
        label.clear();
        let _ = write!(label, "{}d1-{i}", scope.tag);
        let d1 = apex.child(&label).expect("valid label");
        label.clear();
        let _ = write!(label, "{}d2-{i}", scope.tag);
        let d2 = apex.child(&label).expect("valid label");
        d1s.clear();
        let _ = write!(d1s, "{d1}");
        d2s.clear();
        let _ = write!(d2s, "{d2}");

        // Provision: d1 for everyone, d2 only for the super proxy's
        // resolver.
        let web_ip = world.web_ip();
        {
            let auth = world.auth_server_mut();
            auth.zone_mut().add_a(d1.clone(), web_ip);
            auth.zone_mut().add_a(d2.clone(), web_ip);
            let predicate = if exp_opts.naive_google_predicate {
                google_anycast_net()
            } else {
                super_proxy_net(super_dns)
            };
            auth.set_override(
                d2.clone(),
                AnswerOverride::NxdomainUnlessFrom(vec![predicate]),
            );
        }
        world.web_server_mut().put(&d1s, "/", probe_page());
        world.web_server_mut().put(&d2s, "/", probe_page());

        let auth_cursor = world.auth_server().log().len();
        let web_cursor = world.web_server().log().len();

        opts.country = Some(country);
        opts.session = Some(session);

        // Step d1: identify the node, its IP, and its resolver.
        let outcome = (|| -> Option<DnsObservation> {
            let resp = match world.proxy_get(&opts, &Uri::http(&d1s, "/")) {
                Ok(r) => r,
                Err(e) => {
                    data.quality.record_error(country, &e);
                    sampler.record_miss();
                    return None;
                }
            };
            let d1_failed = resp.debug.attempts.len().saturating_sub(1);
            let Some(zid) = resp.debug.final_zid().cloned() else {
                data.quality.record_failure(country);
                return None;
            };
            let fresh = sampler.record(&zid);
            budget.charge(&zid, resp.body.len() as u64);
            if !fresh {
                data.duplicates += 1;
                // Transport delivered fine; dedup is methodology, not loss.
                record_delivered(&mut data.quality, country, d1_failed);
                return None; // already measured this node
            }
            // Resolver: the d1 query that did NOT come from the super
            // proxy's own resolver instance.
            let resolver_ip = world.auth_server().log()[auth_cursor..]
                .iter()
                .filter(|q| q.qname == d1)
                .map(|q| q.src)
                .find(|src| *src != super_dns);
            let Some(resolver_ip) = resolver_ip else {
                // Same anycast instance as the super proxy: ambiguous,
                // filtered (footnote 8). The transport still delivered.
                data.filtered_same_anycast += 1;
                record_delivered(&mut data.quality, country, d1_failed);
                return None;
            };
            let Some(node_ip) = world.web_server().log()[web_cursor..]
                .iter()
                .find(|e| e.host == d1s)
                .map(|e| e.src)
            else {
                data.quality.record_failure(country);
                return None;
            };
            if !budget.allows(&zid, 4096) {
                // Ethics cap, not a transport loss.
                record_delivered(&mut data.quality, country, d1_failed);
                return None; // do not issue d2
            }

            // Step d2: the hijack test, same session.
            let d2_result = world.proxy_get(&opts, &Uri::http(&d2s, "/"));
            let outcome = match d2_result {
                Err(ProxyError::ExitDnsFailure(debug)) => {
                    if debug.final_zid() != Some(&zid) {
                        data.quality.record_failure(country);
                        return None; // node churned mid-pair
                    }
                    record_delivered(
                        &mut data.quality,
                        country,
                        d1_failed + debug.attempts.len().saturating_sub(1),
                    );
                    DnsOutcome::NotHijacked
                }
                Ok(resp) => {
                    if resp.debug.final_zid() != Some(&zid) {
                        data.quality.record_failure(country);
                        return None;
                    }
                    budget.charge(&zid, resp.body.len() as u64);
                    record_delivered(
                        &mut data.quality,
                        country,
                        d1_failed + resp.debug.attempts.len().saturating_sub(1),
                    );
                    DnsOutcome::Hijacked { content: resp.body }
                }
                Err(e) => {
                    data.quality.record_error(country, &e);
                    return None;
                }
            };
            Some(DnsObservation {
                zid,
                node_ip,
                resolver_ip,
                country,
                outcome,
            })
        })();

        match outcome {
            Some(obs) => data.observations.push(obs),
            None => data.discarded += 1,
        }
        // `duplicates` is informational; keep `discarded` as genuine losses.
        if data.duplicates > dup_before {
            data.discarded -= 1;
        }

        // Decommission the probe names; the logs retain the evidence.
        {
            let auth = world.auth_server_mut();
            auth.zone_mut().remove(&d1);
            auth.zone_mut().remove(&d2);
            auth.clear_override(&d2);
        }
        world.web_server_mut().remove(&d1s, "/");
        world.web_server_mut().remove(&d2s, "/");
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_net_covers_anycast_sources() {
        let net = google_anycast_net();
        assert!(net.contains(Ipv4Addr::new(74, 125, 200, 53)));
        assert!(!net.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }
}
