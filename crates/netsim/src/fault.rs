//! Fault injection for the simulated transport.
//!
//! Mirrors the smoltcp example knobs: a drop chance, a corrupt chance (mutate
//! one octet), and an extra-delay spike. The proxy layer uses drops to
//! exercise Luminati's automatic retry path; wire-format code uses corruption
//! to prove parsers reject mangled input instead of panicking.

use crate::latency::Latency;
use crate::rng::{RngExt, SimRng};
use crate::time::SimDuration;

/// What the fault injector decided to do with one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver unmodified after the given extra delay (possibly zero).
    Deliver {
        /// Delay spike to add on top of normal path latency.
        extra_delay: SimDuration,
    },
    /// Deliver after mutating one octet of the payload.
    CorruptAndDeliver {
        /// Delay spike to add on top of normal path latency.
        extra_delay: SimDuration,
    },
    /// Silently drop the message.
    Drop,
}

/// Probabilistic fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability in `[0,1]` that a message is dropped.
    pub drop_chance: f64,
    /// Probability in `[0,1]` that one octet is corrupted.
    pub corrupt_chance: f64,
    /// Probability in `[0,1]` that a delay spike is added.
    pub delay_chance: f64,
    /// The delay spike distribution.
    pub delay_spike: Latency,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// An injector that never interferes.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            delay_chance: 0.0,
            delay_spike: Latency::fixed(0),
        }
    }

    /// A lossy-link profile: the smoltcp examples' suggested starting point.
    pub fn lossy(drop_chance: f64) -> Self {
        FaultInjector {
            drop_chance,
            corrupt_chance: 0.0,
            delay_chance: 0.0,
            delay_spike: Latency::fixed(0),
        }
    }

    /// True if this injector can never interfere.
    pub fn is_none(&self) -> bool {
        self.drop_chance == 0.0 && self.corrupt_chance == 0.0 && self.delay_chance == 0.0
    }

    /// Decide the fate of one message.
    pub fn judge(&self, rng: &mut SimRng) -> FaultVerdict {
        if self.drop_chance > 0.0 && rng.random_bool(self.drop_chance) {
            return FaultVerdict::Drop;
        }
        let extra_delay = if self.delay_chance > 0.0 && rng.random_bool(self.delay_chance) {
            self.delay_spike.sample(rng)
        } else {
            SimDuration::ZERO
        };
        if self.corrupt_chance > 0.0 && rng.random_bool(self.corrupt_chance) {
            FaultVerdict::CorruptAndDeliver { extra_delay }
        } else {
            FaultVerdict::Deliver { extra_delay }
        }
    }

    /// Mutate one octet of `payload` in place (no-op on empty payloads).
    /// The mutation is guaranteed to change the byte.
    pub fn corrupt(rng: &mut SimRng, payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let idx = rng.random_range(0..payload.len());
        let flip: u8 = rng.random_range(1..=255_u8);
        payload[idx] ^= flip;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_delivers_clean() {
        let inj = FaultInjector::none();
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(
                inj.judge(&mut rng),
                FaultVerdict::Deliver {
                    extra_delay: SimDuration::ZERO
                }
            );
        }
    }

    #[test]
    fn drop_chance_one_always_drops() {
        let inj = FaultInjector::lossy(1.0);
        let mut rng = SimRng::new(2);
        for _ in 0..20 {
            assert_eq!(inj.judge(&mut rng), FaultVerdict::Drop);
        }
    }

    #[test]
    fn drop_rate_is_approximately_honored() {
        let inj = FaultInjector::lossy(0.15);
        let mut rng = SimRng::new(3);
        let drops = (0..10_000)
            .filter(|_| inj.judge(&mut rng) == FaultVerdict::Drop)
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((0.12..0.18).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn corrupt_changes_exactly_one_byte() {
        let mut rng = SimRng::new(4);
        let original = vec![0u8; 64];
        for _ in 0..50 {
            let mut copy = original.clone();
            FaultInjector::corrupt(&mut rng, &mut copy);
            let diffs = original.iter().zip(&copy).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn corrupt_on_empty_is_noop() {
        let mut rng = SimRng::new(5);
        let mut empty: Vec<u8> = vec![];
        FaultInjector::corrupt(&mut rng, &mut empty);
        assert!(empty.is_empty());
    }
}
