//! A micro-benchmark harness (the workspace's `criterion` replacement).
//!
//! Shape: each benchmark runs a **warmup** phase, auto-calibrates an
//! iterations-per-sample count so one sample takes a target duration, then
//! collects N timed samples and reports per-iteration min / median / p95 /
//! mean. Results render as an aligned text table and as machine-readable
//! JSON (one object per benchmark), which `scripts/check.sh` appends to the
//! repo-root `BENCH_substrate.json` for the performance trajectory across
//! PRs.
//!
//! Environment knobs:
//! - `TFT_BENCH_QUICK=1` — one-iteration smoke mode, used by tests and CI
//!   so bench binaries double as correctness checks;
//! - `TFT_BENCH_SAMPLES=<n>` — override the timed-sample count (applies on
//!   top of quick mode; ignored if unparsable or zero). CI uses this to
//!   buy regression-guard confidence without full calibrated runs;
//! - `BENCH_JSON=<path>` — where [`Harness::finish`] writes the JSON report.

use crate::json::{Json, ToJson};
use std::hint::black_box;
use std::time::Duration;

/// The bench clock: the workspace's only sanctioned wall-clock read.
///
/// Benchmarks measure real elapsed time by definition, so the single
/// allowlisted `Instant::now` lives here; every timing in the harness goes
/// through this shim. Simulated paths use `netsim`'s virtual `SimTime` and
/// must never observe host time — `tft-lint`'s `no-wall-clock` pass
/// enforces that workspace-wide.
mod clock {
    use std::time::Instant;

    /// Read the wall clock once.
    pub(super) fn now() -> Instant {
        // tft-lint: allow(no-wall-clock, reason = "bench timing is wall-clock by definition; sole sanctioned read, everything else uses SimTime")
        Instant::now()
    }
}

/// Statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark name (`group/name` by convention).
    pub name: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
}

impl ToJson for Stats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(self.name.clone())),
            ("iters_per_sample".into(), Json::uint(self.iters_per_sample)),
            ("samples".into(), Json::uint(self.samples as u64)),
            ("min_ns".into(), Json::float(self.min_ns)),
            ("median_ns".into(), Json::float(self.median_ns)),
            ("p95_ns".into(), Json::float(self.p95_ns)),
            ("mean_ns".into(), Json::float(self.mean_ns)),
        ])
    }
}

/// Tuning for a [`Harness`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Wall-clock budget for the warmup phase.
    pub warmup: Duration,
    /// Target duration of one timed sample (iterations auto-calibrate).
    pub sample_target: Duration,
    /// Number of timed samples per benchmark.
    pub samples: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            warmup: Duration::from_millis(150),
            sample_target: Duration::from_millis(10),
            samples: 30,
        }
    }
}

impl Options {
    /// One-iteration smoke mode: every benchmark body runs a handful of
    /// times, results are still produced but not meaningful.
    pub fn quick() -> Options {
        Options {
            warmup: Duration::ZERO,
            sample_target: Duration::ZERO,
            samples: 3,
        }
    }
}

/// A benchmark collection: run closures, gather [`Stats`], render/emit.
pub struct Harness {
    label: String,
    options: Options,
    results: Vec<Stats>,
    notes: Vec<(String, Json)>,
}

impl Harness {
    /// A harness named `label` (e.g. the bench target name). Honors
    /// `TFT_BENCH_QUICK=1` by switching to [`Options::quick`], then
    /// `TFT_BENCH_SAMPLES=<n>` as a sample-count override on whichever
    /// mode applies (ignored unless it parses to a positive integer).
    pub fn new(label: &str) -> Harness {
        let mut options = if std::env::var_os("TFT_BENCH_QUICK").is_some_and(|v| v != "0") {
            Options::quick()
        } else {
            Options::default()
        };
        if let Some(samples) = std::env::var("TFT_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            options.samples = samples;
        }
        Harness::with_options(label, options)
    }

    /// A harness with explicit tuning.
    pub fn with_options(label: &str, options: Options) -> Harness {
        Harness {
            label: label.to_string(),
            options,
            results: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attach a side-channel measurement to the report (e.g. an allocation
    /// count from a counting allocator). Notes land in the JSON document
    /// under `"notes"`, in insertion order; a repeated key overwrites.
    pub fn note(&mut self, key: &str, value: Json) {
        if let Some(slot) = self.notes.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.notes.push((key.to_string(), value));
        }
    }

    /// Whether the harness is in quick (smoke) mode.
    pub fn is_quick(&self) -> bool {
        self.options.sample_target == Duration::ZERO
    }

    /// Benchmark `f`, auto-calibrating iterations per sample.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Stats {
        // Warmup: keep running until the budget is spent (at least once).
        let warmup_end = clock::now() + self.options.warmup;
        let mut warmup_iters = 0u64;
        let warmup_start = clock::now();
        loop {
            black_box(f());
            warmup_iters += 1;
            if clock::now() >= warmup_end {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;

        // Calibrate: aim for sample_target per sample, at least 1 iteration.
        let iters = if self.options.sample_target.is_zero() || per_iter <= 0.0 {
            1
        } else {
            ((self.options.sample_target.as_nanos() as f64 / per_iter).round() as u64).max(1)
        };

        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.options.samples);
        for _ in 0..self.options.samples.max(1) {
            let start = clock::now();
            for _ in 0..iters {
                black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));

        let stats = Stats {
            name: format!("{}/{}", self.label, name),
            iters_per_sample: iters,
            samples: sample_ns.len(),
            min_ns: sample_ns[0],
            median_ns: percentile(&sample_ns, 0.50),
            p95_ns: percentile(&sample_ns, 0.95),
            mean_ns: sample_ns.iter().sum::<f64>() / sample_ns.len() as f64,
        };
        eprintln!("{}", render_row(&stats));
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// The aligned text report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<44} {:>12} {:>12} {:>12} {:>8}\n",
            format!("benchmark ({})", self.label),
            "min",
            "median",
            "p95",
            "samples"
        );
        for s in &self.results {
            out.push_str(&render_row(s));
            out.push('\n');
        }
        out
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("label".into(), Json::str(self.label.clone())),
            ("quick".into(), Json::Bool(self.is_quick())),
            (
                "benchmarks".into(),
                Json::Arr(self.results.iter().map(ToJson::to_json).collect()),
            ),
        ];
        if !self.notes.is_empty() {
            members.push(("notes".into(), Json::Obj(self.notes.clone())));
        }
        Json::Obj(members)
    }

    /// Print the table to stdout and, if `BENCH_JSON` is set, write the
    /// JSON report there. Call at the end of a bench binary's `main`.
    pub fn finish(self) {
        println!("{}", self.render());
        if let Some(path) = std::env::var_os("BENCH_JSON") {
            let doc = self.to_json().render_pretty();
            if let Err(e) = std::fs::write(&path, doc + "\n") {
                eprintln!("[bench] could not write {}: {e}", path.to_string_lossy());
            } else {
                eprintln!("[bench] wrote {}", path.to_string_lossy());
            }
        }
    }
}

fn render_row(s: &Stats) -> String {
    format!(
        "{:<44} {:>12} {:>12} {:>12} {:>8}",
        s.name,
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.p95_ns),
        s.samples
    )
}

/// Format nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Harness {
        Harness::with_options("test", Options::quick())
    }

    #[test]
    fn smoke_run_produces_ordered_stats() {
        let mut h = quick();
        let s = h.bench("noop", || 1 + 1).clone();
        assert_eq!(s.name, "test/noop");
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn json_report_contains_every_bench() {
        let mut h = quick();
        h.bench("a", || ());
        h.bench("b", || ());
        let doc = h.to_json();
        let benches = doc.get("benchmarks").unwrap().as_arr().unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].get("name").unwrap().as_str(), Some("test/a"));
        assert!(benches[0].get("median_ns").unwrap().as_f64().is_some());
        // And the rendered document reparses.
        assert!(crate::json::parse(&doc.render_pretty()).is_ok());
    }

    #[test]
    fn notes_land_in_json_and_repeated_keys_overwrite() {
        let mut h = quick();
        h.bench("a", || ());
        h.note("allocs_per_probe", Json::float(12.5));
        h.note("allocs_per_probe", Json::float(11.0));
        h.note("probes", Json::uint(400));
        let doc = h.to_json();
        let notes = doc.get("notes").unwrap();
        assert_eq!(notes.get("allocs_per_probe").unwrap().as_f64(), Some(11.0));
        assert_eq!(notes.get("probes").unwrap().as_f64(), Some(400.0));
        assert!(crate::json::parse(&doc.render_pretty()).is_ok());
        // No notes → no "notes" member (older reports stay stable).
        let bare = quick().to_json();
        assert!(bare.get("notes").is_none());
    }

    #[test]
    fn render_is_one_row_per_bench() {
        let mut h = quick();
        h.bench("x", || ());
        let table = h.render();
        assert_eq!(table.lines().count(), 2, "header + one row:\n{table}");
        assert!(table.contains("test/x"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(12_300.0), "12.30 µs");
        assert_eq!(fmt_ns(12_300_000.0), "12.30 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }
}
