//! Deterministic, splittable randomness.
//!
//! Everything random in the simulation flows from one `u64` master seed.
//! Components obtain *forked* generators keyed by a string label, so adding a
//! new consumer never perturbs the stream any existing consumer sees — the
//! property that keeps regression tests stable as the system grows.
//!
//! The underlying generator is `substrate`'s xoshiro256++; forking hashes
//! `(seed, label)` with FNV-1a plus a splitmix64 avalanche, so a child's
//! stream depends only on the parent's seed and the label, never on how much
//! the parent has been used.

use substrate::rng::Xoshiro256pp;

pub use substrate::rng::{Rng, RngExt};

/// A deterministic random source forked from a master seed.
///
/// `SimRng` wraps a [`Xoshiro256pp`] and remembers the seed it was built from
/// so that child generators can be derived by hashing `(seed, label)` rather
/// than by drawing from the parent's stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Create a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// The seed this generator was constructed from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator keyed by `label`.
    ///
    /// Forking is stable: the child's stream depends only on the parent's
    /// seed and the label, never on how much the parent has been used.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(mix(self.seed, label))
    }

    /// Derive an independent child generator keyed by a numeric index, for
    /// per-entity streams (e.g. one per exit node).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        SimRng::new(mix(mix(self.seed, label), &index.to_string()))
    }
}

/// FNV-1a-style mixing of a seed with a label; cheap, stable across runs and
/// platforms, and good enough to decorrelate xoshiro streams.
fn mix(seed: u64, label: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Final avalanche (splitmix64 finalizer) so short labels still give
    // well-spread seeds.
    substrate::rng::mix64(h)
}

impl Rng for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn fork_is_independent_of_parent_usage() {
        let parent = SimRng::new(7);
        let mut used = parent.clone();
        for _ in 0..1000 {
            used.next_u64();
        }
        let mut c1 = parent.fork("dns");
        let mut c2 = used.fork("dns");
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_decorrelate() {
        let parent = SimRng::new(7);
        let mut a = parent.fork("dns");
        let mut b = parent.fork("http");
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn fork_indexed_distinct_per_index() {
        let parent = SimRng::new(9);
        let mut a = parent.fork_indexed("node", 1);
        let mut b = parent.fork_indexed("node", 2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_sampling_works() {
        let mut r = SimRng::new(3);
        for _ in 0..100 {
            let x: u32 = r.random_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    /// Fork-derived seeds are pinned to literal values: the fork label hash
    /// must never change, or every seeded regression across the workspace
    /// silently shifts. These constants predate the substrate migration —
    /// they are the FNV-1a + splitmix64-avalanche outputs the `rand`-based
    /// implementation produced, and any reimplementation must reproduce them.
    #[test]
    fn fork_seed_derivation_is_stable() {
        assert_eq!(mix(0xBE7C, "dns"), 14568902525121034501);
        assert_eq!(mix(0xBE7C, "http"), 15188186104731946253);
        assert_eq!(mix(0xBE7C, "node"), 17852461738735752517);
        assert_eq!(mix(0xBE7C, ""), 11133108351405400072);

        let parent = SimRng::new(0xBE7C);
        assert_eq!(parent.fork("dns").seed(), 14568902525121034501);
        assert_eq!(parent.fork_indexed("node", 3).seed(), 17769928698577356723);
    }
}
