//! RouteViews-equivalent RIB snapshot: prefix → origin AS.
//!
//! The paper maps IP addresses to ASes "using data from RouteViews taken at
//! the same time as our data collection" (§3.1). Our snapshot is built by the
//! world generator at world-construction time — the same-time property holds
//! by construction.

use crate::trie::PrefixTrie;
use crate::types::{Asn, Ipv4Net};
use std::net::Ipv4Addr;

/// An immutable RIB snapshot supporting longest-prefix-match origin lookup.
#[derive(Debug, Clone)]
pub struct RibSnapshot {
    trie: PrefixTrie<Asn>,
    routes: Vec<(Ipv4Net, Asn)>,
}

/// Builder for [`RibSnapshot`].
#[derive(Debug, Default)]
pub struct RibBuilder {
    routes: Vec<(Ipv4Net, Asn)>,
}

impl RibBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announce `net` as originated by `asn`. Later announcements of the same
    /// prefix override earlier ones (mirroring a RIB dump where the most
    /// recent path wins).
    pub fn announce(&mut self, net: Ipv4Net, asn: Asn) -> &mut Self {
        self.routes.push((net, asn));
        self
    }

    /// Freeze into a snapshot.
    pub fn build(self) -> RibSnapshot {
        let mut trie = PrefixTrie::new();
        for &(net, asn) in &self.routes {
            trie.insert(net, asn);
        }
        RibSnapshot {
            trie,
            routes: self.routes,
        }
    }
}

impl RibSnapshot {
    /// Longest-prefix-match origin AS for `ip`.
    pub fn origin(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.trie.lookup(ip).copied()
    }

    /// All announced routes, in announcement order.
    pub fn routes(&self) -> &[(Ipv4Net, Asn)] {
        &self.routes
    }

    /// Number of distinct prefixes in the snapshot.
    pub fn prefix_count(&self) -> usize {
        self.trie.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_lookup_prefers_specifics() {
        let mut b = RibBuilder::new();
        b.announce("10.0.0.0/8".parse().unwrap(), Asn(100));
        b.announce("10.20.0.0/16".parse().unwrap(), Asn(200));
        let rib = b.build();
        assert_eq!(rib.origin("10.20.1.1".parse().unwrap()), Some(Asn(200)));
        assert_eq!(rib.origin("10.99.1.1".parse().unwrap()), Some(Asn(100)));
        assert_eq!(rib.origin("11.0.0.1".parse().unwrap()), None);
    }

    #[test]
    fn later_announcement_overrides() {
        let mut b = RibBuilder::new();
        let net = "192.0.2.0/24".parse().unwrap();
        b.announce(net, Asn(1));
        b.announce(net, Asn(2));
        let rib = b.build();
        assert_eq!(rib.origin("192.0.2.1".parse().unwrap()), Some(Asn(2)));
        assert_eq!(rib.prefix_count(), 1);
        assert_eq!(rib.routes().len(), 2);
    }
}
