//! Shared allocation instrumentation for the study benches (`parallel`,
//! `fullscale`): a counting `#[global_allocator]` with a live-bytes
//! high-water mark and a pool-setup pause window.
//!
//! ## The observer effect, and why counting is gated
//!
//! The first version of this instrument counted every allocation event
//! into a single `AtomicU64` — including during the timed runs. One
//! shared, contended cache line hit ~230M times per study run taxes
//! precisely the configurations the bench exists to showcase: with 8
//! workers on 8 cores, every allocation bounces the counter line across
//! cores, and the "scaling" curve measured the *instrument*, not the
//! executor. The counter is therefore (a) **gated** — timed runs pay one
//! relaxed load of a read-shared flag, never a write — and (b) **sharded**
//! into cache-line-padded per-thread slots for the dedicated accounting
//! runs, so even those don't serialize on one line.
//!
//! ## Live bytes and the peak
//!
//! Each shard tracks net live bytes (`alloc` adds the layout size,
//! `dealloc` subtracts it, `realloc` adds the delta) and folds a
//! `fetch_max` high-water mark per shard. Because a block may be freed on
//! a different thread (shard) than the one that allocated it, a shard's
//! live count can go negative; the per-shard peaks are monotone
//! regardless, and their sum is reported as `peak_bytes` — an **upper
//! bound** on the study's net allocation growth inside the accounting
//! window (the true global peak cannot exceed the sum of per-shard
//! maxima). Memory allocated before the window opens and freed inside it
//! only pushes shards *down*, so it never inflates the bound.
//!
//! ## The pool-setup pause window
//!
//! `substrate::pool::Pool::run` builds its slot vectors and spawns worker
//! threads on the calling thread; that scaffolding scales with the worker
//! knob while the study's own work does not. [`install_pool_observer`]
//! registers enter/exit hooks that flip a calling-thread-local `PAUSED`
//! flag, excluding pool-internal setup from the accounting window — so
//! `alloc_events_workers{N}` measures the executor's work, which *is*
//! worker-count-invariant, instead of drifting upward with N by a few
//! hundred slot/spawn allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Shard count for the event counter. More than any worker count the bench
/// drives *cores* at (threads share slots round-robin beyond this), enough
/// that concurrent counting threads virtually never share a line.
const COUNTER_SHARDS: usize = 16;

/// One shard alone on its cache line, so shards never false-share.
#[repr(align(64))]
struct Shard {
    /// Allocation events (`alloc` + `realloc` calls; frees are not events —
    /// per-probe churn is what the lint pass targets).
    events: AtomicU64,
    /// Net live bytes attributed to this shard; may go negative when a
    /// block is freed on a different thread than allocated it.
    live: AtomicI64,
    /// High-water mark of `live`, folded via `fetch_max`.
    peak: AtomicI64,
}

/// Whether allocation events are being counted. Off during timed runs:
/// the only cost the instrument may impose there is a relaxed load of
/// this flag — a read-shared line, never written mid-run.
static COUNTING: AtomicBool = AtomicBool::new(false);

/// Per-thread-assigned counter shards (see [`COUNTER_SHARDS`]).
static SHARDS: [Shard; COUNTER_SHARDS] = [const {
    Shard {
        events: AtomicU64::new(0),
        live: AtomicI64::new(0),
        peak: AtomicI64::new(0),
    }
}; COUNTER_SHARDS];

/// Next shard to hand to a counting thread that doesn't have one yet.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// This thread's shard index; `usize::MAX` until first counted event.
    /// Const-initialized `Cell` so the TLS access itself never allocates
    /// (the allocator must not re-enter itself).
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };

    /// Calling-thread pause flag: while set, this thread's allocator
    /// activity is invisible to the accounting (see module docs).
    static PAUSED: Cell<bool> = const { Cell::new(false) };
}

/// This thread's shard, assigning one on first use.
#[inline]
fn my_shard() -> &'static Shard {
    MY_SHARD.with(|slot| {
        let mut k = slot.get();
        if k == usize::MAX {
            k = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            slot.set(k);
        }
        &SHARDS[k]
    })
}

/// Record an allocation event growing live bytes by `grow`.
#[inline]
fn record_event(grow: i64) {
    if PAUSED.with(Cell::get) {
        return;
    }
    let shard = my_shard();
    shard.events.fetch_add(1, Ordering::Relaxed);
    let now = shard
        .live
        .fetch_add(grow, Ordering::Relaxed)
        .wrapping_add(grow);
    shard.peak.fetch_max(now, Ordering::Relaxed);
}

/// Record a free shrinking live bytes by `bytes` (not an event).
#[inline]
fn record_free(bytes: i64) {
    if PAUSED.with(Cell::get) {
        return;
    }
    my_shard().live.fetch_sub(bytes, Ordering::Relaxed);
}

/// Open the accounting window.
pub fn counting_on() {
    COUNTING.store(true, Ordering::Relaxed);
}

/// Close the accounting window.
pub fn counting_off() {
    COUNTING.store(false, Ordering::Relaxed);
}

/// Sum of all shards' event counts. Only meaningful while no one counts.
pub fn total_events() -> u64 {
    SHARDS
        .iter()
        .map(|c| c.events.load(Ordering::Relaxed))
        .sum()
}

/// Upper bound on the peak net live-byte growth inside the accounting
/// window: the sum of per-shard high-water marks (see module docs).
pub fn peak_bytes() -> u64 {
    SHARDS
        .iter()
        .map(|c| c.peak.load(Ordering::Relaxed).max(0) as u64)
        .sum()
}

/// Zero all shards.
pub fn reset() {
    for c in &SHARDS {
        c.events.store(0, Ordering::Relaxed);
        c.live.store(0, Ordering::Relaxed);
        c.peak.store(0, Ordering::Relaxed);
    }
}

fn pause_enter() {
    PAUSED.with(|p| p.set(true));
}

fn pause_exit() {
    PAUSED.with(|p| p.set(false));
}

/// Register the pool setup observer so pool-internal scaffolding falls
/// outside the accounting window. Call once before the first counted run;
/// returns false if an observer was already registered (first wins).
pub fn install_pool_observer() -> bool {
    substrate::pool::set_setup_observer(pause_enter, pause_exit)
}

/// `System` with the gated, sharded accounting described in the module
/// docs. Counts `alloc` and `realloc` calls as events — the events a
/// hot-path `format!` or `.clone()` emits — and tracks net live bytes for
/// the `peak_bytes` high-water mark.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            record_event(layout.size() as i64);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if COUNTING.load(Ordering::Relaxed) {
            record_free(layout.size() as i64);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            record_event(new_size as i64 - layout.size() as i64);
        }
        System.realloc(ptr, layout, new_size)
    }
}
