//! The measurement study's authoritative DNS server.
//!
//! Two capabilities the methodology depends on (§4.1):
//!
//! 1. **Source-conditional answers** — for the d₂ probe the server returns a
//!    valid A record *only* when the query arrives from the super proxy's
//!    resolver (Google's anycast range); every other source gets NXDOMAIN.
//!    This convinces the super proxy the domain exists while presenting
//!    NXDOMAIN to the exit node's resolver.
//! 2. **A query log** — the *incoming DNS request* is the only way to learn
//!    an exit node's resolver address; the log is a primary observable of
//!    the whole study.

use crate::name::DnsName;
use crate::wire::{Message, QType, Rcode};
use crate::zone::{Zone, ZoneAnswer};
use netsim::SimTime;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Per-name answer override policies.
#[derive(Debug, Clone)]
pub enum AnswerOverride {
    /// Return NXDOMAIN unless the query source lies inside the allowed
    /// predicate — the d₂ trick. The predicate is a list of `(network
    /// address, prefix length)` pairs.
    NxdomainUnlessFrom(Vec<inetdb_net::Net>),
    /// Always SERVFAIL (used in fault-handling tests).
    ServFail,
}

/// Minimal CIDR predicate, local to this crate to avoid a dependency cycle
/// (inetdb depends on nothing DNS-related, but dnswire should not pull the
/// whole registry in just for a prefix test).
pub mod inetdb_net {
    use std::net::Ipv4Addr;

    /// A network predicate: address and prefix length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Net {
        addr: u32,
        len: u8,
    }

    impl Net {
        /// Construct, masking host bits.
        ///
        /// # Panics
        /// Panics if `len > 32`.
        pub fn new(addr: Ipv4Addr, len: u8) -> Self {
            assert!(len <= 32);
            let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
            Net {
                addr: u32::from(addr) & mask,
                len,
            }
        }

        /// True if `ip` is inside the prefix.
        pub fn contains(&self, ip: Ipv4Addr) -> bool {
            let mask = if self.len == 0 {
                0
            } else {
                u32::MAX << (32 - self.len)
            };
            (u32::from(ip) & mask) == self.addr
        }
    }
}

/// One logged query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// When the query arrived.
    pub at: SimTime,
    /// Source address of the query — an exit node's resolver, or the super
    /// proxy's Google resolver.
    pub src: Ipv4Addr,
    /// Queried name.
    pub qname: DnsName,
    /// Queried type.
    pub qtype: QType,
}

substrate::json_struct!(QueryLogEntry {
    at,
    src,
    qname,
    qtype,
});

/// The authoritative server: a zone, per-name overrides, and a query log.
#[derive(Debug, Clone)]
pub struct AuthServer {
    zone: Zone,
    overrides: BTreeMap<DnsName, AnswerOverride>,
    log: Vec<QueryLogEntry>,
}

impl AuthServer {
    /// Serve the given zone.
    pub fn new(zone: Zone) -> Self {
        AuthServer {
            zone,
            overrides: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Mutable access to the zone (the measurement client provisions probe
    /// names on the fly).
    pub fn zone_mut(&mut self) -> &mut Zone {
        &mut self.zone
    }

    /// Read access to the zone.
    pub fn zone(&self) -> &Zone {
        &self.zone
    }

    /// Install an override for `name`.
    pub fn set_override(&mut self, name: DnsName, policy: AnswerOverride) {
        self.overrides.insert(name, policy);
    }

    /// Remove an override.
    pub fn clear_override(&mut self, name: &DnsName) {
        self.overrides.remove(name);
    }

    /// Handle one query, logging it and applying overrides.
    pub fn handle(&mut self, query: &Message, src: Ipv4Addr, now: SimTime) -> Message {
        let Some(q) = query.questions.first() else {
            return Message::respond(query, Rcode::FormErr, vec![]);
        };
        self.log.push(QueryLogEntry {
            at: now,
            src,
            qname: q.qname.clone(),
            qtype: q.qtype,
        });
        if let Some(policy) = self.overrides.get(&q.qname) {
            match policy {
                AnswerOverride::NxdomainUnlessFrom(allowed) => {
                    if !allowed.iter().any(|n| n.contains(src)) {
                        let mut resp = Message::respond(query, Rcode::NxDomain, vec![]);
                        resp.authority.push(self.zone.soa().clone());
                        return resp;
                    }
                    // fall through to the zone answer
                }
                AnswerOverride::ServFail => {
                    return Message::respond(query, Rcode::ServFail, vec![]);
                }
            }
        }
        match self.zone.lookup(&q.qname, q.qtype) {
            ZoneAnswer::Records(rrs) => Message::respond(query, Rcode::NoError, rrs),
            ZoneAnswer::NoData => {
                let mut resp = Message::respond(query, Rcode::NoError, vec![]);
                resp.authority.push(self.zone.soa().clone());
                resp
            }
            ZoneAnswer::NxDomain => {
                let mut resp = Message::respond(query, Rcode::NxDomain, vec![]);
                resp.authority.push(self.zone.soa().clone());
                resp
            }
            ZoneAnswer::NotAuthoritative => Message::respond(query, Rcode::Refused, vec![]),
        }
    }

    /// The full query log.
    pub fn log(&self) -> &[QueryLogEntry] {
        &self.log
    }

    /// Append log entries recorded elsewhere (shard evidence merging).
    pub fn absorb_log(&mut self, entries: &[QueryLogEntry]) {
        self.log.extend_from_slice(entries);
    }

    /// Queries for one name, in arrival order.
    pub fn queries_for<'a>(
        &'a self,
        name: &'a DnsName,
    ) -> impl Iterator<Item = &'a QueryLogEntry> + 'a {
        self.log.iter().filter(move |e| &e.qname == name)
    }

    /// Clear the query log.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::inetdb_net::Net;
    use super::*;
    use crate::wire::RData;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn server() -> AuthServer {
        let mut zone = Zone::new(name("tft-probe.example"));
        zone.add_a(name("d1.tft-probe.example"), Ipv4Addr::new(192, 0, 2, 80));
        zone.add_a(name("d2.tft-probe.example"), Ipv4Addr::new(192, 0, 2, 80));
        AuthServer::new(zone)
    }

    const GOOGLE_SRC: Ipv4Addr = Ipv4Addr::new(74, 125, 3, 9);
    const ISP_SRC: Ipv4Addr = Ipv4Addr::new(41, 0, 0, 53);

    fn google_only() -> AnswerOverride {
        AnswerOverride::NxdomainUnlessFrom(vec![Net::new(Ipv4Addr::new(74, 125, 0, 0), 16)])
    }

    #[test]
    fn d1_resolves_for_everyone() {
        let mut s = server();
        let q = Message::query(1, name("d1.tft-probe.example"), QType::A);
        assert_eq!(
            s.handle(&q, ISP_SRC, SimTime::EPOCH).flags.rcode,
            Rcode::NoError
        );
        assert_eq!(
            s.handle(&q, GOOGLE_SRC, SimTime::EPOCH).flags.rcode,
            Rcode::NoError
        );
    }

    #[test]
    fn d2_is_conditional_on_source() {
        let mut s = server();
        s.set_override(name("d2.tft-probe.example"), google_only());
        let q = Message::query(2, name("d2.tft-probe.example"), QType::A);
        // Super proxy's Google resolver sees a valid record…
        let via_google = s.handle(&q, GOOGLE_SRC, SimTime::EPOCH);
        assert_eq!(via_google.flags.rcode, Rcode::NoError);
        assert!(matches!(via_google.answers[0].rdata, RData::A(_)));
        // …while the exit node's resolver sees NXDOMAIN.
        let via_isp = s.handle(&q, ISP_SRC, SimTime::EPOCH);
        assert!(via_isp.is_nxdomain());
        assert!(
            !via_isp.authority.is_empty(),
            "negative response carries SOA"
        );
    }

    #[test]
    fn every_query_is_logged_with_source() {
        let mut s = server();
        let q = Message::query(3, name("d1.tft-probe.example"), QType::A);
        s.handle(&q, ISP_SRC, SimTime::from_millis(500));
        s.handle(&q, GOOGLE_SRC, SimTime::from_millis(900));
        assert_eq!(s.log().len(), 2);
        assert_eq!(s.log()[0].src, ISP_SRC);
        assert_eq!(s.log()[1].at, SimTime::from_millis(900));
        assert_eq!(s.queries_for(&name("d1.tft-probe.example")).count(), 2);
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let mut s = server();
        let q = Message::query(4, name("ghost.tft-probe.example"), QType::A);
        assert!(s.handle(&q, ISP_SRC, SimTime::EPOCH).is_nxdomain());
    }

    #[test]
    fn out_of_zone_refused() {
        let mut s = server();
        let q = Message::query(5, name("www.elsewhere.example"), QType::A);
        assert_eq!(
            s.handle(&q, ISP_SRC, SimTime::EPOCH).flags.rcode,
            Rcode::Refused
        );
    }

    #[test]
    fn servfail_override() {
        let mut s = server();
        s.set_override(name("d1.tft-probe.example"), AnswerOverride::ServFail);
        let q = Message::query(6, name("d1.tft-probe.example"), QType::A);
        assert_eq!(
            s.handle(&q, ISP_SRC, SimTime::EPOCH).flags.rcode,
            Rcode::ServFail
        );
    }

    #[test]
    fn clearing_override_restores_zone_answer() {
        let mut s = server();
        s.set_override(name("d2.tft-probe.example"), google_only());
        s.clear_override(&name("d2.tft-probe.example"));
        let q = Message::query(7, name("d2.tft-probe.example"), QType::A);
        assert_eq!(
            s.handle(&q, ISP_SRC, SimTime::EPOCH).flags.rcode,
            Rcode::NoError
        );
    }

    #[test]
    fn empty_question_is_formerr() {
        let mut s = server();
        let mut q = Message::query(8, name("d1.tft-probe.example"), QType::A);
        q.questions.clear();
        assert_eq!(
            s.handle(&q, ISP_SRC, SimTime::EPOCH).flags.rcode,
            Rcode::FormErr
        );
        assert!(s.log().is_empty(), "malformed queries are not logged");
    }
}
