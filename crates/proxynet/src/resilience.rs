//! Retry backoff and circuit breakers for the proxy request pipeline.
//!
//! Both mechanisms default to **off** so the historical request flows (and
//! every pinned-seed golden) are untouched: a disabled policy draws no
//! randomness and adds no virtual time. When enabled, every decision is a
//! pure function of the request's own forked `SimRng` and virtual time, so
//! a chaos campaign replays byte-identically at any worker count.
//!
//! The breaker state machine is the classic three-state one, keyed twice
//! (per exit node and per ISP): `failure_threshold` consecutive failures
//! open the circuit for `cooldown`; after the cooldown one trial request is
//! allowed through (half-open) — success closes the circuit, failure
//! re-opens it for a fresh cooldown.

use netsim::rng::RngExt;
use netsim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Exponential backoff with deterministic jitter between retry attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Base delay before the first retry; zero disables backoff entirely
    /// (no delay, **no RNG draws**).
    pub backoff_base: SimDuration,
    /// Upper bound on the exponential delay (jitter may add up to one
    /// `backoff_base` on top).
    pub backoff_cap: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No backoff: retries go out immediately, as the historical flows did.
    pub fn none() -> Self {
        RetryPolicy {
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
        }
    }

    /// Exponential backoff: retry `n` (0-based) waits
    /// `min(base · 2ⁿ, cap) + jitter`, with jitter uniform in
    /// `[0, base]`.
    pub fn exponential(base: SimDuration, cap: SimDuration) -> Self {
        RetryPolicy {
            backoff_base: base,
            backoff_cap: cap,
        }
    }

    /// True when this policy never delays (and never draws).
    pub fn is_none(&self) -> bool {
        self.backoff_base.is_zero()
    }

    /// The delay before retry `attempt` (0-based: the delay after the
    /// first failure). Draws exactly one value from `rng` when enabled,
    /// none when disabled.
    pub fn delay(&self, attempt: usize, rng: &mut SimRng) -> SimDuration {
        if self.is_none() {
            return SimDuration::ZERO;
        }
        let base_ms = self.backoff_base.as_millis();
        let factor = 1u64 << attempt.min(20) as u32;
        let exp_ms = base_ms
            .saturating_mul(factor)
            .min(self.backoff_cap.as_millis().max(base_ms));
        let jitter_ms = rng.random_range(0..=base_ms);
        SimDuration::from_millis(exp_ms.saturating_add(jitter_ms))
    }
}

/// Circuit-breaker tuning for one key space (node or ISP).
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreakerConfig {
    /// Consecutive failures that open the circuit.
    pub failure_threshold: u32,
    /// How long an open circuit rejects candidates before allowing a
    /// half-open trial.
    pub cooldown: SimDuration,
}

/// Per-key breaker state.
#[derive(Debug, Clone, Default)]
struct BreakerEntry {
    /// Consecutive failures since the last success.
    consecutive: u32,
    /// While `Some(t)`, the circuit rejects candidates until virtual time
    /// `t`; at or after `t` one half-open trial is allowed.
    open_until: Option<SimTime>,
}

/// Breakers for both key spaces. Disabled (no configs) by default; a
/// disabled breaker records nothing and rejects nothing.
///
/// State lives in `BTreeMap`s: the executor clones worlds per shard and
/// never merges breaker state back (it is shard-local control state, like
/// sessions), but deterministic iteration order keeps `Debug` output and
/// any future merging stable.
#[derive(Debug, Clone, Default)]
pub struct CircuitBreakers {
    node_cfg: Option<CircuitBreakerConfig>,
    isp_cfg: Option<CircuitBreakerConfig>,
    nodes: BTreeMap<u64, BreakerEntry>,
    isps: BTreeMap<u64, BreakerEntry>,
}

impl CircuitBreakers {
    /// Disabled breakers (the default).
    pub fn disabled() -> Self {
        CircuitBreakers::default()
    }

    /// Enable breaking per exit node and/or per ISP.
    pub fn new(
        node_cfg: Option<CircuitBreakerConfig>,
        isp_cfg: Option<CircuitBreakerConfig>,
    ) -> Self {
        CircuitBreakers {
            node_cfg,
            isp_cfg,
            nodes: BTreeMap::new(),
            isps: BTreeMap::new(),
        }
    }

    /// True when at least one key space is configured.
    pub fn enabled(&self) -> bool {
        self.node_cfg.is_some() || self.isp_cfg.is_some()
    }

    /// May a request try this (node, ISP) candidate at `now`?
    pub fn allows(&self, node: u64, isp: u64, now: SimTime) -> bool {
        fn entry_allows(e: Option<&BreakerEntry>, now: SimTime) -> bool {
            match e.and_then(|e| e.open_until) {
                Some(until) => now >= until, // half-open trial once cooled
                None => true,
            }
        }
        (self.node_cfg.is_none() || entry_allows(self.nodes.get(&node), now))
            && (self.isp_cfg.is_none() || entry_allows(self.isps.get(&isp), now))
    }

    /// Record a failed exchange with this candidate at `now`.
    pub fn record_failure(&mut self, node: u64, isp: u64, now: SimTime) {
        fn fail(e: &mut BreakerEntry, cfg: &CircuitBreakerConfig, now: SimTime) {
            e.consecutive = e.consecutive.saturating_add(1);
            if e.consecutive >= cfg.failure_threshold {
                e.open_until = Some(now + cfg.cooldown);
            }
        }
        if let Some(cfg) = &self.node_cfg {
            fail(self.nodes.entry(node).or_default(), cfg, now);
        }
        if let Some(cfg) = &self.isp_cfg {
            fail(self.isps.entry(isp).or_default(), cfg, now);
        }
    }

    /// Record a successful exchange with this candidate: the circuit
    /// closes and the failure count resets.
    pub fn record_success(&mut self, node: u64, isp: u64) {
        if self.node_cfg.is_some() {
            if let Some(e) = self.nodes.get_mut(&node) {
                *e = BreakerEntry::default();
            }
        }
        if self.isp_cfg.is_some() {
            if let Some(e) = self.isps.get_mut(&isp) {
                *e = BreakerEntry::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_policy_draws_nothing_and_waits_nothing() {
        let p = RetryPolicy::none();
        let mut rng = SimRng::new(1);
        let probe = rng.clone();
        assert!(p.delay(0, &mut rng).is_zero());
        assert!(p.delay(4, &mut rng).is_zero());
        use netsim::rng::Rng;
        assert_eq!(rng.next_u64(), probe.clone().next_u64());
    }

    #[test]
    fn exponential_backoff_grows_and_caps() {
        let p = RetryPolicy::exponential(
            SimDuration::from_millis(100),
            SimDuration::from_millis(1000),
        );
        let mut rng = SimRng::new(2);
        for attempt in 0..30 {
            let d = p.delay(attempt, &mut rng).as_millis();
            let exp = (100u64 << attempt.min(20)).min(1000);
            assert!(d >= exp, "attempt {attempt}: {d} < {exp}");
            assert!(d <= exp + 100, "attempt {attempt}: {d} > {exp}+100");
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p =
            RetryPolicy::exponential(SimDuration::from_millis(50), SimDuration::from_millis(800));
        let mut a = SimRng::new(3);
        let mut b = SimRng::new(3);
        for attempt in 0..10 {
            assert_eq!(p.delay(attempt, &mut a), p.delay(attempt, &mut b));
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_cools_down() {
        let cfg = CircuitBreakerConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(10),
        };
        let mut b = CircuitBreakers::new(Some(cfg), None);
        assert!(b.enabled());
        assert!(b.allows(1, 9, t(0)));
        b.record_failure(1, 9, t(0));
        b.record_failure(1, 9, t(1));
        assert!(b.allows(1, 9, t(2)), "below threshold stays closed");
        b.record_failure(1, 9, t(2));
        assert!(!b.allows(1, 9, t(3)), "threshold reached: open");
        assert!(!b.allows(1, 9, t(10_001)), "still cooling");
        assert!(b.allows(1, 9, t(10_002)), "half-open trial after cooldown");
        // A failed trial re-opens with a fresh cooldown.
        b.record_failure(1, 9, t(10_002));
        assert!(!b.allows(1, 9, t(15_000)));
        assert!(b.allows(1, 9, t(20_002)));
        // A successful trial closes the circuit and resets the count.
        b.record_success(1, 9);
        assert!(b.allows(1, 9, t(20_003)));
        b.record_failure(1, 9, t(20_003));
        assert!(b.allows(1, 9, t(20_004)), "count restarted after success");
        // Other nodes were never affected.
        assert!(b.allows(2, 9, t(3)));
    }

    #[test]
    fn isp_breaker_covers_every_node_in_the_isp() {
        let cfg = CircuitBreakerConfig {
            failure_threshold: 2,
            cooldown: SimDuration::from_secs(5),
        };
        let mut b = CircuitBreakers::new(None, Some(cfg));
        b.record_failure(1, 40, t(0));
        b.record_failure(2, 40, t(1));
        assert!(!b.allows(3, 40, t(2)), "whole ISP open");
        assert!(b.allows(3, 41, t(2)), "other ISPs unaffected");
    }

    #[test]
    fn disabled_breakers_never_reject() {
        let mut b = CircuitBreakers::disabled();
        assert!(!b.enabled());
        for i in 0..100 {
            b.record_failure(1, 1, t(i));
        }
        assert!(b.allows(1, 1, t(100)));
    }
}
