//! `seed-discipline`: every `SimRng` must be seeded deterministically.
//!
//! A `SimRng::new(seed)` whose seed flows from ambient state (wall clock,
//! hasher `RandomState`, environment, process/thread identity) silently
//! re-randomises every run and voids the pinned renders. Seeds must come
//! from literals, CLI arguments, or other deterministic values — `SimTime`
//! from `netsim` is virtual and therefore fine. The pass lexically scans
//! the argument span of each `SimRng::new(…)` (and `fork(…)` is exempt:
//! forks derive from the parent seed by construction) for ambient sources.

use super::{code_indices, code_matches};
use crate::engine::{Diagnostic, FileKind, Pass, SourceFile};
use crate::lexer::TokKind;

/// Idents that mean the seed observes ambient state.
const AMBIENT_TYPES: [&str; 4] = ["SystemTime", "Instant", "RandomState", "DefaultHasher"];

/// Module idents that, followed by `::`, mean ambient state (`env::var`,
/// `process::id`, `thread::current`).
const AMBIENT_MODULES: [&str; 3] = ["env", "process", "thread"];

/// Forbid ambient state in `SimRng` construction arguments.
pub struct SeedDiscipline;

impl Pass for SeedDiscipline {
    fn id(&self) -> &'static str {
        "seed-discipline"
    }

    fn description(&self) -> &'static str {
        "SimRng::new seeds must be literals, CLI args, or other deterministic \
         values — never wall clock, RandomState, env, or process identity"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        file.kind == FileKind::Rust
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let code = code_indices(file);
        for w in 0..code.len() {
            if !code_matches(file, &code, w, &["SimRng", ":", ":", "new", "("]) {
                continue;
            }
            let open = code[w + 4];
            let close = file.matching_close(open, "(", ")");
            let head = &file.tokens[code[w]];
            for idx in open..close {
                let t = &file.tokens[idx];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let name = t.text(&file.text);
                let next_is_path = file.tok_text(idx + 1) == ":" && file.tok_text(idx + 2) == ":";
                let ambient = AMBIENT_TYPES.contains(&name)
                    || (AMBIENT_MODULES.contains(&name) && next_is_path);
                if ambient {
                    out.push(Diagnostic {
                        pass: self.id().into(),
                        file: file.rel_path.clone(),
                        line: head.line,
                        col: head.col,
                        message: format!(
                            "SimRng::new seed flows from ambient `{name}`; seeds must be \
                             literals or CLI-provided so runs replay byte-identically"
                        ),
                    });
                }
            }
        }
    }
}
