//! Table renderers: the measured counterpart of every numbered table,
//! printed side-by-side with the paper's published values.

use crate::analysis::{
    dns::DnsAnalysis, http::HttpAnalysis, https::HttpsAnalysis, monitor::MonitorAnalysis,
};
use crate::study::StudyReport;
use std::fmt::Write as _;
use worldgen::calibration;

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Table 1: the study at a glance, compared with the other approaches.
pub fn table1(report: &StudyReport) -> String {
    let mut s = header("Table 1 — measurement approaches (reproduction row measured live)");
    let days = report.finished.since(report.started).as_secs_f64() / 86_400.0;
    writeln!(
        s,
        "{:<22} {:>10} {:>8} {:>10} {:>12}  protocols",
        "project", "nodes", "ASes", "countries", "period"
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>10} {:>8} {:>10} {:>11.2}d  DNS HTTP HTTPS",
        "this reproduction",
        report.unique_nodes(),
        report.unique_ases(),
        report.unique_countries(),
        days
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>10} {:>8} {:>10} {:>12}  DNS HTTP HTTPS (paper)",
        "paper (Luminati)",
        calibration::study::NODES,
        calibration::study::ASES,
        calibration::study::COUNTRIES,
        format!("{}d", calibration::study::DAYS),
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>10} {:>8} {:>10} {:>12}  ICMP DNS HTTP HTTPS",
        "Netalyzr", 1_217_181, 14_375, 196, "6y"
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>10} {:>8} {:>10} {:>12}  ICMP DNS HTTP HTTPS",
        "BISmark", 406, 118, 34, "2y"
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>10} {:>8} {:>10} {:>12}  ICMP DNS HTTP HTTPS",
        "Dasu", 100_104, 1_802, 147, "6y"
    )
    .unwrap();
    writeln!(
        s,
        "{:<22} {:>10} {:>8} {:>10} {:>12}  ICMP DNS HTTP HTTPS",
        "RIPE Atlas", 9_300, 3_333, 181, "6y"
    )
    .unwrap();
    s
}

/// Table 2: per-experiment coverage.
pub fn table2(report: &StudyReport) -> String {
    let mut s =
        header("Table 2 — exit nodes / ASes / countries per experiment (measured vs paper)");
    writeln!(
        s,
        "{:<12} {:>9} {:>7} {:>10} | {:>9} {:>7} {:>10}",
        "experiment", "nodes", "ASes", "countries", "paper", "ASes", "countries"
    )
    .unwrap();
    let rows = [
        (
            "DNS",
            report.dns.nodes,
            report.dns.ases,
            report.dns.countries,
        ),
        (
            "HTTP",
            report.http.nodes,
            report.http.ases,
            report.http.countries,
        ),
        (
            "HTTPS",
            report.https.nodes,
            report.https.ases,
            report.https.countries,
        ),
        (
            "Monitoring",
            report.monitor.nodes,
            report.monitor.ases,
            report.monitor.countries,
        ),
    ];
    for ((name, n, a, c), (pname, pn, pa, pc)) in rows.iter().zip(calibration::table2::ROWS) {
        debug_assert_eq!(*name, pname);
        writeln!(
            s,
            "{name:<12} {n:>9} {a:>7} {c:>10} | {pn:>9} {pa:>7} {pc:>10}"
        )
        .unwrap();
    }
    s
}

/// Table 3: top-10 countries by NXDOMAIN hijack ratio.
pub fn table3(dns: &DnsAnalysis) -> String {
    let mut s = header("Table 3 — top countries by NXDOMAIN hijack ratio (measured | paper)");
    writeln!(
        s,
        "{:<5} {:<8} {:>9} {:>8} {:>7} | {:>7}",
        "rank", "country", "hijacked", "total", "ratio", "paper"
    )
    .unwrap();
    let paper: std::collections::BTreeMap<&str, f64> = calibration::TABLE3
        .iter()
        .map(|(c, h, t)| (*c, *h as f64 / *t as f64))
        .collect();
    for (i, row) in dns.by_country.iter().take(10).enumerate() {
        let p = paper
            .get(row.country.as_str())
            .map(|r| format!("{:>6.1}%", r * 100.0))
            .unwrap_or_else(|| "     —".into());
        writeln!(
            s,
            "{:<5} {:<8} {:>9} {:>8} {:>6.1}% | {}",
            i + 1,
            row.country,
            row.hijacked,
            row.total,
            row.ratio() * 100.0,
            p
        )
        .unwrap();
    }
    writeln!(
        s,
        "overall hijack rate: {:.2}% (paper: {:.1}%)",
        100.0 * dns.hijacked as f64 / dns.nodes.max(1) as f64,
        100.0 * calibration::headline::DNS_HIJACK_RATE
    )
    .unwrap();
    s
}

/// Table 4: hijacking ISP DNS servers aggregated by ISP.
pub fn table4(dns: &DnsAnalysis) -> String {
    let mut s =
        header("Table 4 — ISP DNS servers hijacking ≥90% of their nodes (measured | paper)");
    writeln!(
        s,
        "{:<8} {:<28} {:>8} {:>7} | {:>8} {:>7}",
        "country", "ISP", "servers", "nodes", "servers", "nodes"
    )
    .unwrap();
    let paper: std::collections::BTreeMap<&str, (u64, u64)> = calibration::TABLE4
        .iter()
        .map(|(_, isp, srv, nodes)| (*isp, (*srv, *nodes)))
        .collect();
    for row in &dns.isp_rows {
        let (psrv, pnodes) = paper
            .get(row.isp.as_str())
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .unwrap_or(("—".into(), "—".into()));
        writeln!(
            s,
            "{:<8} {:<28} {:>8} {:>7} | {:>8} {:>7}",
            row.country.to_string(),
            row.isp,
            row.servers,
            row.nodes,
            psrv,
            pnodes
        )
        .unwrap();
    }
    writeln!(
        s,
        "ISP resolvers: {} identified, {} with enough nodes, {} hijacking",
        dns.isp_resolvers_total, dns.isp_resolvers_qualified, dns.isp_resolvers_hijacking
    )
    .unwrap();
    s
}

/// Table 5: domains in hijacked content served to Google-DNS users.
pub fn table5(dns: &DnsAnalysis) -> String {
    let mut s =
        header("Table 5 — domains in hijacked pages of Google-DNS nodes (measured | paper nodes)");
    writeln!(
        s,
        "{:<40} {:>6} {:>5} {:>4}  {:<8} | {:>6}",
        "domain", "nodes", "ASes", "ctys", "verdict", "paper"
    )
    .unwrap();
    let paper: std::collections::BTreeMap<&str, u64> = calibration::TABLE5
        .iter()
        .map(|(d, n, _, _)| (*d, *n))
        .collect();
    for row in &dns.google_domains {
        let p = paper
            .get(row.domain.as_str())
            .map(|n| n.to_string())
            .unwrap_or_else(|| "—".into());
        writeln!(
            s,
            "{:<40} {:>6} {:>5} {:>4}  {:<8} | {:>6}",
            row.domain,
            row.nodes,
            row.ases,
            row.countries,
            if row.likely_endhost {
                "end-host"
            } else {
                "ISP"
            },
            p
        )
        .unwrap();
    }
    writeln!(
        s,
        "Google-DNS nodes: {} measured, {} hijacked anyway",
        dns.google_nodes, dns.google_hijacked
    )
    .unwrap();
    writeln!(
        s,
        "attribution: ISP {:.1}% / public {:.1}% / other {:.1}%  (paper: 89.6 / 7.7 / 2.7)",
        dns.attribution.shares().0 * 100.0,
        dns.attribution.shares().1 * 100.0,
        dns.attribution.shares().2 * 100.0
    )
    .unwrap();
    for fam in &dns.shared_js_families {
        writeln!(
            s,
            "shared hijack-page JavaScript (vendor appliance) across {} ISPs: {} ({} nodes)",
            fam.isps.len(),
            fam.isps.join(", "),
            fam.nodes
        )
        .unwrap();
    }
    for g in dns.google_dominant_ases.iter().take(5) {
        writeln!(
            s,
            "Google-DNS-dominant AS: {} ({}) — {:.1}% of {} nodes",
            g.asn,
            g.org,
            g.google_share * 100.0,
            g.nodes
        )
        .unwrap();
    }
    s
}

/// Table 6: injected-JavaScript signatures.
pub fn table6(http: &HttpAnalysis) -> String {
    let mut s = header("Table 6 — injected JavaScript signatures (measured | paper nodes)");
    writeln!(
        s,
        "{:<36} {:>6} {:>5} {:>5} | {:>6}",
        "signature", "nodes", "ctys", "ASes", "paper"
    )
    .unwrap();
    let paper: std::collections::BTreeMap<String, u64> = calibration::TABLE6
        .iter()
        .map(|(sig, n, _, _, _)| (sig.to_string(), *n))
        .collect();
    for row in http.signatures.iter().take(12) {
        let p = paper
            .get(&row.signature)
            .or_else(|| paper.get(row.signature.trim_end_matches(".example")))
            .map(|n| n.to_string())
            .unwrap_or_else(|| "—".into());
        writeln!(
            s,
            "{:<36} {:>6} {:>5} {:>5} | {:>6}",
            row.signature, row.nodes, row.countries, row.ases, p
        )
        .unwrap();
    }
    writeln!(
        s,
        "HTML: {} modified ({} block pages filtered, {} injected) of {} nodes ({:.2}%; paper 0.95%)",
        http.html_modified,
        http.html_block_pages,
        http.html_injected,
        http.nodes,
        100.0 * http.html_modified as f64 / http.nodes.max(1) as f64
    )
    .unwrap();
    for (asn, name, ratio) in &http.isp_level_injection_ases {
        writeln!(
            s,
            "ISP-level injection: {asn} ({name}) — {:.0}% of nodes",
            ratio * 100.0
        )
        .unwrap();
    }
    s
}

/// Table 7: image-transcoding mobile ASes.
pub fn table7(http: &HttpAnalysis) -> String {
    let mut s = header("Table 7 — image-compressing ASes (measured | paper mod-share, ratio)");
    writeln!(
        s,
        "{:<9} {:<20} {:<3} {:>5} {:>6} {:>7} {:<12} | {:>7} {:<6}",
        "AS", "ISP", "cty", "mod", "total", "share", "ratios", "share", "ratio"
    )
    .unwrap();
    let paper: std::collections::BTreeMap<u32, &calibration::Table7Row> =
        calibration::TABLE7.iter().map(|r| (r.asn, r)).collect();
    for row in &http.image_rows {
        let ratios = if row.multi_ratio() {
            "M".to_string()
        } else {
            row.ratios
                .iter()
                .map(|r| format!("{:.0}%", r * 100.0))
                .collect::<Vec<_>>()
                .join(",")
        };
        let (pshare, pratio) = paper
            .get(&row.asn.0)
            .map(|r| {
                (
                    format!("{:.0}%", 100.0 * r.modified as f64 / r.total as f64),
                    if r.ratios.len() > 1 {
                        "M".to_string()
                    } else {
                        format!("{:.0}%", r.ratios[0] * 100.0)
                    },
                )
            })
            .unwrap_or(("—".into(), "—".into()));
        writeln!(
            s,
            "{:<9} {:<20} {:<3} {:>5} {:>6} {:>6.0}% {:<12} | {:>7} {:<6}",
            row.asn.to_string(),
            row.isp,
            row.country.to_string(),
            row.modified,
            row.total,
            row.mod_ratio() * 100.0,
            ratios,
            pshare,
            pratio
        )
        .unwrap();
    }
    writeln!(
        s,
        "images: {} of {} nodes modified ({:.2}%; paper 1.4%) | JS replaced: {} (all error/empty: {}) | CSS replaced: {} ",
        http.image_modified,
        http.nodes,
        100.0 * http.image_modified as f64 / http.nodes.max(1) as f64,
        http.js.nodes,
        http.js.error_or_empty == http.js.nodes,
        http.css.nodes,
    )
    .unwrap();
    s
}

/// Table 8: issuers of replaced certificates.
pub fn table8(https: &HttpsAnalysis) -> String {
    let mut s = header("Table 8 — issuers of replaced certificates (measured | paper nodes)");
    writeln!(
        s,
        "{:<40} {:>6} {:>10} {:>12} | {:>6}",
        "issuer", "nodes", "shared-key", "masks-inval", "paper"
    )
    .unwrap();
    let paper: std::collections::BTreeMap<&str, u64> = calibration::TABLE8
        .iter()
        .map(|r| {
            (
                if r.issuer.is_empty() {
                    "Empty"
                } else {
                    r.issuer
                },
                r.nodes,
            )
        })
        .collect();
    for row in https.issuers.iter().take(13) {
        let p = paper
            .get(row.issuer.as_str())
            .map(|n| n.to_string())
            .unwrap_or_else(|| "—".into());
        writeln!(
            s,
            "{:<40} {:>6} {:>10} {:>12} | {:>6}",
            row.issuer, row.nodes, row.shared_key_nodes, row.masks_invalid_nodes, p
        )
        .unwrap();
    }
    writeln!(
        s,
        "replaced: {} of {} nodes ({:.2}%; paper {:.2}%), {} selective, {} issuers; ASes>10%: {:.1}%",
        https.replaced_nodes,
        https.nodes,
        100.0 * https.replaced_nodes as f64 / https.nodes.max(1) as f64,
        100.0 * calibration::headline::CERT_REPLACE_RATE,
        https.selective_nodes,
        https.unique_issuers,
        https.ases_over_10pct * 100.0
    )
    .unwrap();
    s
}

/// Table 9: monitoring entities.
pub fn table9(monitor: &MonitorAnalysis) -> String {
    let mut s = header("Table 9 — content-monitoring entities (measured | paper nodes)");
    writeln!(
        s,
        "{:<26} {:>4} {:>6} {:>5} {:>5} {:>7} {:>5} {:>4} | {:>6}",
        "entity", "IPs", "nodes", "ASes", "ctys", "req/nd", "pre%", "VPN", "paper"
    )
    .unwrap();
    let paper: std::collections::BTreeMap<&str, u64> = calibration::TABLE9
        .iter()
        .map(|(n, _, nodes, _, _)| (*n, *nodes))
        .collect();
    for row in monitor.entities.iter().take(10) {
        let p = paper
            .iter()
            .find(|(name, _)| normalized(name) == normalized(&row.name))
            .map(|(_, n)| n.to_string())
            .unwrap_or_else(|| "—".into());
        writeln!(
            s,
            "{:<26} {:>4} {:>6} {:>5} {:>5} {:>7.2} {:>4.0}% {:>4} | {:>6}",
            row.name,
            row.source_ips,
            row.nodes,
            row.node_ases,
            row.node_countries,
            row.requests_per_node,
            row.prefetch_fraction() * 100.0,
            row.vpn_nodes,
            p
        )
        .unwrap();
        if row.isp_level {
            writeln!(
                s,
                "    ISP-level monitoring: {:.1}% of the ISP's measured nodes",
                row.isp_share * 100.0
            )
            .unwrap();
        }
    }
    writeln!(
        s,
        "monitored: {} of {} nodes ({:.2}%; paper 1.5%), {} source IPs in {} source ASes",
        monitor.monitored_nodes,
        monitor.nodes,
        100.0 * monitor.monitored_nodes as f64 / monitor.nodes.max(1) as f64,
        monitor.unexpected_sources,
        monitor.source_as_groups
    )
    .unwrap();
    s
}

fn normalized(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}
