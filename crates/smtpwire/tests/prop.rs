//! Property tests: SMTP reply wire roundtrips and parser totality.

use proptest::prelude::*;
use smtpwire::{Capabilities, Command, Reply};

fn arb_reply_line() -> impl Strategy<Value = String> {
    // Printable ASCII without CR/LF.
    proptest::string::string_regex("[ -~]{0,60}").expect("regex")
}

proptest! {
    #[test]
    fn reply_roundtrip(code in 200u16..560, lines in proptest::collection::vec(arb_reply_line(), 1..6)) {
        let reply = Reply::multiline(code, lines);
        let text = reply.to_text();
        prop_assert_eq!(Reply::parse(&text).unwrap(), reply);
    }

    #[test]
    fn reply_parser_total(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let text = String::from_utf8_lossy(&garbage).into_owned();
        let _ = Reply::parse(&text);
    }

    #[test]
    fn command_parser_total(line in proptest::string::string_regex("[ -~]{0,80}").expect("regex")) {
        let _ = Command::parse(&line);
    }

    /// Stripping the STARTTLS line from any EHLO reply always clears the
    /// parsed capability — the invariant the stripping middlebox relies on.
    #[test]
    fn capability_stripping_invariant(extra in proptest::collection::vec(arb_reply_line(), 0..4)) {
        let mut lines = vec!["mx.example".to_string(), "STARTTLS".to_string()];
        lines.extend(extra);
        let full = Reply::multiline(250, lines.clone());
        prop_assert!(Capabilities::from_ehlo(&full).starttls);
        let stripped_lines: Vec<String> = lines
            .iter()
            .enumerate()
            .filter(|(i, l)| *i == 0 || !l.eq_ignore_ascii_case("STARTTLS"))
            .map(|(_, l)| l.clone())
            .collect();
        let stripped = Reply::multiline(250, stripped_lines);
        prop_assert!(!Capabilities::from_ehlo(&stripped).starttls);
    }
}
