//! `no-wall-clock`: ambient wall-clock reads are forbidden everywhere.
//!
//! The reproduction's pinned renders (`crates/bench/tests/determinism.rs`)
//! only hold if simulated runs never observe host time. `netsim` provides
//! virtual `SimTime`; the single legitimate wall-clock consumer is the
//! bench harness's timing shim in `substrate`, which carries a reasoned
//! allow.

use super::{code_indices, code_matches};
use crate::engine::{Diagnostic, Pass, SourceFile};
use crate::lexer::TokKind;

/// Forbid `Instant::now()` / `SystemTime::now()` outside allowlisted sites.
pub struct NoWallClock;

impl Pass for NoWallClock {
    fn id(&self) -> &'static str {
        "no-wall-clock"
    }

    fn description(&self) -> &'static str {
        "forbid SystemTime::now/Instant::now; simulated paths must use SimTime, \
         benches go through the substrate clock shim"
    }

    fn applies(&self, file: &SourceFile) -> bool {
        matches!(file.kind, crate::engine::FileKind::Rust)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        // Test modules are still in scope: a wall-clock read in a unit test
        // is a flake generator, not a convenience.
        let code = code_indices(file);
        for w in 0..code.len() {
            let idx = code[w];
            let t = &file.tokens[idx];
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text(&file.text);
            if name != "Instant" && name != "SystemTime" {
                continue;
            }
            if code_matches(file, &code, w + 1, &[":", ":", "now"]) {
                out.push(Diagnostic {
                    pass: self.id().into(),
                    file: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{name}::now() reads ambient wall-clock time; use SimTime \
                         (netsim) or the substrate bench clock shim"
                    ),
                });
            }
        }
    }
}
