//! Observation records — everything the measurement client is allowed to
//! know.
//!
//! Each experiment produces a dataset of per-node observations assembled
//! from (a) proxy responses and (b) the study's own server logs. No ground
//! truth appears here; the analysis layer works from these records plus the
//! public registry datasets (RouteViews / CAIDA / Alexa equivalents).

use crate::quality::DataQuality;
use certs::Certificate;
use inetdb::CountryCode;
use proxynet::{WebLogEntry, ZId};
use std::net::Ipv4Addr;
use substrate::intern::Symbol;

/// Outcome of one node's d₂ probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsOutcome {
    /// The NXDOMAIN reached the node: the proxy reported a DNS error.
    NotHijacked,
    /// Content came back instead of an error; someone answered for a
    /// nonexistent name.
    Hijacked {
        /// The substituted page, for content attribution (§4.3.3).
        content: Vec<u8>,
    },
}

/// One node's DNS measurement (§4.1).
#[derive(Debug, Clone)]
pub struct DnsObservation {
    /// Exit node identity.
    pub zid: ZId,
    /// Address observed at our web server during the d₁ fetch.
    pub node_ip: Ipv4Addr,
    /// Address our authoritative server saw the node's query come from.
    pub resolver_ip: Ipv4Addr,
    /// Country requested from the proxy service for this probe.
    pub country: CountryCode,
    /// The d₂ outcome.
    pub outcome: DnsOutcome,
}

/// The DNS experiment's dataset.
#[derive(Debug, Clone, Default)]
pub struct DnsDataset {
    /// Per-node observations.
    pub observations: Vec<DnsObservation>,
    /// Nodes excluded because their resolver was the same Google anycast
    /// instance the super proxy uses (footnote 8).
    pub filtered_same_anycast: usize,
    /// Probes that reached a node already measured (saturation traffic).
    pub duplicates: usize,
    /// Probes that failed or were discarded (node churn mid-pair, proxy
    /// errors, byte-cap stops).
    pub discarded: usize,
    /// Total proxy sessions issued.
    pub samples_issued: usize,
    /// Per-country probe dispositions (the data-quality annex).
    pub quality: DataQuality,
}

/// The four reference objects of the HTTP experiment (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeObject {
    /// 9 KB HTML page.
    Html,
    /// 39 KB JPEG image.
    Jpeg,
    /// 258 KB un-minified JavaScript library.
    Js,
    /// 3 KB un-minified CSS file.
    Css,
}

impl ProbeObject {
    /// All four objects in fetch order.
    pub const ALL: [ProbeObject; 4] = [
        ProbeObject::Html,
        ProbeObject::Jpeg,
        ProbeObject::Js,
        ProbeObject::Css,
    ];

    /// URL path of this object on the study server.
    pub fn path(self) -> &'static str {
        match self {
            ProbeObject::Html => "/obj/page.html",
            ProbeObject::Jpeg => "/obj/image.jpg",
            ProbeObject::Js => "/obj/library.js",
            ProbeObject::Css => "/obj/style.css",
        }
    }

    /// Content type served.
    pub fn content_type(self) -> &'static str {
        match self {
            ProbeObject::Html => "text/html",
            ProbeObject::Jpeg => "image/jpeg",
            ProbeObject::Js => "application/javascript",
            ProbeObject::Css => "text/css",
        }
    }
}

/// Why one object fetch was excluded from the modification analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quarantine {
    /// The body arrived as a strict prefix of what was sent — transport
    /// truncation, not modification.
    Truncated,
    /// The body differed but a confirming refetch disagreed with it — the
    /// paper's "repeated consistent fetches" rule (§5) failed, so this is
    /// transport corruption, not modification.
    Inconsistent,
}

/// Result of fetching one object through one node.
#[derive(Debug, Clone)]
pub struct ObjectResult {
    /// Which object.
    pub object: ProbeObject,
    /// Bytes sent by the study server.
    pub original_len: usize,
    /// Bytes received through the tunnel.
    pub received_len: usize,
    /// The received body, kept only when it differs from the original
    /// *and* survived the consistency check. Quarantined fetches never set
    /// this — damaged payloads must not count as tampering.
    pub modified_body: Option<Vec<u8>>,
    /// Set when this fetch was excluded from analysis.
    pub quarantine: Option<Quarantine>,
}

impl ObjectResult {
    /// True if the body changed in flight (confirmed, not quarantined).
    pub fn is_modified(&self) -> bool {
        self.modified_body.is_some()
    }
}

/// One node's HTTP measurement.
#[derive(Debug, Clone)]
pub struct HttpObservation {
    /// Exit node identity.
    pub zid: ZId,
    /// Address observed at our web server.
    pub node_ip: Ipv4Addr,
    /// Per-object results (usually all four).
    pub results: Vec<ObjectResult>,
}

/// The HTTP experiment's dataset.
#[derive(Debug, Clone, Default)]
pub struct HttpDataset {
    /// Per-node observations.
    pub observations: Vec<HttpObservation>,
    /// Total proxy sessions issued.
    pub samples_issued: usize,
    /// Nodes skipped because their AS already had its phase-1 quota.
    pub skipped_quota: usize,
    /// Per-country object-fetch dispositions (the data-quality annex).
    pub quality: DataQuality,
}

/// Site class in the HTTPS experiment (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Country-ranked popular site.
    Popular,
    /// International (university) site.
    International,
    /// A study-controlled site with an intentionally invalid certificate.
    Invalid,
}

/// One TLS certificate collection.
#[derive(Debug, Clone)]
pub struct CertProbe {
    /// Hostname (SNI), interned in the world's site-symbol table. An
    /// escalated node records 33 of these; a `Symbol` is a u32 copy where
    /// an owned hostname was a per-probe allocation. Resolve against
    /// `world.site_symbols` at the verification/report boundary.
    pub host: Symbol,
    /// Site class.
    pub class: SiteClass,
    /// The chain presented through the tunnel, leaf first.
    pub chain: Vec<Certificate>,
}

/// One node's HTTPS measurement.
#[derive(Debug, Clone)]
pub struct HttpsObservation {
    /// Exit node identity.
    pub zid: ZId,
    /// Country requested for this probe.
    pub country: CountryCode,
    /// Reported exit address (for AS mapping; CONNECT bypasses our servers
    /// so there is no web-log source address).
    pub exit_ip: Ipv4Addr,
    /// All certificate probes (3 in phase 1, plus the full 33 if phase 2
    /// triggered).
    pub probes: Vec<CertProbe>,
    /// Whether phase 2 ran (an initial check failed).
    pub escalated: bool,
}

/// The HTTPS experiment's dataset.
#[derive(Debug, Clone, Default)]
pub struct HttpsDataset {
    /// Per-node observations.
    pub observations: Vec<HttpsObservation>,
    /// Probes skipped because the requested country has no rankings (the
    /// paper's 115-country limitation).
    pub skipped_unranked: usize,
    /// Total proxy sessions issued.
    pub samples_issued: usize,
    /// Per-country handshake dispositions (the data-quality annex).
    pub quality: DataQuality,
}

/// One node's monitoring measurement (§7.1).
#[derive(Debug, Clone)]
pub struct MonitorObservation {
    /// Exit node identity.
    pub zid: ZId,
    /// Exit address as reported by the proxy service.
    pub reported_exit_ip: Ipv4Addr,
    /// The unique probe domain generated for this node.
    pub domain: String,
    /// The node's own request as logged at our web server.
    pub own_request: Option<WebLogEntry>,
    /// Additional, unexpected requests for the same domain within the
    /// observation window.
    pub unexpected: Vec<WebLogEntry>,
}

/// The monitoring experiment's dataset.
#[derive(Debug, Clone, Default)]
pub struct MonitorDataset {
    /// Per-node observations.
    pub observations: Vec<MonitorObservation>,
    /// Observation window length (hours).
    pub window_hours: u64,
    /// Total proxy sessions issued.
    pub samples_issued: usize,
    /// Per-country probe dispositions (the data-quality annex).
    pub quality: DataQuality,
}
