//! The lint passes. Each submodule holds one pass; [`default_passes`]
//! assembles the standard set enforced by `scripts/check.sh`.

mod arith;
mod hot_alloc;
mod manifests;
mod panic_paths;
mod pool_mut;
mod seed;
mod unordered;
mod wall_clock;

pub use arith::UncheckedArithReachable;
pub use hot_alloc::HotPathAlloc;
pub use manifests::{check_workspace_manifests, HermeticManifests};
pub use panic_paths::NoPanicOnUntrustedBytes;
pub use pool_mut::PoolSharedMut;
pub use seed::SeedDiscipline;
pub use unordered::NoUnorderedIteration;
pub use wall_clock::NoWallClock;

use crate::engine::{FileKind, Pass, SourceFile};
use crate::lexer::TokKind;

/// The standard pass set, in diagnostic-id order.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(HermeticManifests),
        Box::new(HotPathAlloc),
        Box::new(NoPanicOnUntrustedBytes),
        Box::new(NoUnorderedIteration),
        Box::new(NoWallClock),
        Box::new(PoolSharedMut),
        Box::new(SeedDiscipline),
        Box::new(UncheckedArithReachable),
    ]
}

/// True for production source files: anything under a crate's `src/` tree
/// (root-package files have no crate prefix, so a bare `src/` counts too).
/// The graph passes skip `tests/`, `benches/`, and `examples/` — test and
/// bench code may allocate and clone freely.
pub(crate) fn in_src(file: &SourceFile) -> bool {
    file.kind == FileKind::Rust
        && (file.rel_path.starts_with("src/") || file.rel_path.contains("/src/"))
}

/// Indices of the code tokens of `file` — everything except comments.
/// Passes walk these so that a forbidden pattern quoted in a doc comment
/// (or spelled inside a string literal, which lexes as one `Str` token)
/// never fires.
pub(crate) fn code_indices(file: &SourceFile) -> Vec<usize> {
    file.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect()
}

/// True when token index `i` falls inside any of the `(start, end)` ranges.
pub(crate) fn in_ranges(i: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(s, e)| i >= s && i < e)
}

/// True when the code tokens starting at position `w` of `code` spell
/// `texts` exactly. The lexer emits single-character puncts, so a path
/// separator is written `":", ":"` here, never `"::"`.
pub(crate) fn code_matches(file: &SourceFile, code: &[usize], w: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, want)| code.get(w + k).map(|&j| file.tok_text(j)) == Some(*want))
}
