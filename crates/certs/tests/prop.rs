//! Property tests: chain validation accepts exactly the chains it should.

use certs::{verify_chain, CertAuthority, CertError, DistinguishedName, KeyId, RootStore};
use netsim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn arb_host() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z]{1,10}(\\.[a-z]{2,8}){1,3}").expect("regex")
}

proptest! {
    /// A chain issued root → (0..3 intermediates) → leaf always validates
    /// for its own hostname inside its validity window.
    #[test]
    fn issued_chains_validate(seed in any::<u64>(), host in arb_host(), depth in 0usize..3) {
        let mut rng = SimRng::new(seed);
        let now = SimTime::EPOCH + SimDuration::from_days(10);
        let (store, mut cas) = RootStore::os_x_like(3, SimTime::EPOCH, &mut rng);
        let mut signer = cas.remove(0);
        let mut chain_tail = vec![signer.cert.clone()];
        for i in 0..depth {
            let inter = signer.issue_intermediate(
                DistinguishedName::cn(&format!("Inter {i}")),
                SimTime::EPOCH,
                &mut rng,
            );
            chain_tail.insert(0, inter.cert.clone());
            signer = inter;
        }
        let leaf = signer.issue_leaf(&host, SimTime::EPOCH, &mut rng);
        let mut chain = vec![leaf];
        chain.extend(chain_tail);
        prop_assert_eq!(verify_chain(&chain, &host, now, &store), Ok(()));
    }

    /// Any single broken signature link invalidates the chain.
    #[test]
    fn broken_link_is_rejected(seed in any::<u64>(), host in arb_host(), key in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let now = SimTime::EPOCH + SimDuration::from_days(10);
        let (store, mut cas) = RootStore::os_x_like(2, SimTime::EPOCH, &mut rng);
        let mut inter = cas[0].issue_intermediate(
            DistinguishedName::cn("Inter"),
            SimTime::EPOCH,
            &mut rng,
        );
        let mut leaf = inter.issue_leaf(&host, SimTime::EPOCH, &mut rng);
        let forged = KeyId(key);
        prop_assume!(forged != leaf.issuer_key);
        leaf.issuer_key = forged;
        let chain = vec![leaf, inter.cert.clone()];
        prop_assert_eq!(
            verify_chain(&chain, &host, now, &store),
            Err(CertError::BadSignature)
        );
    }

    /// A chain for host A never validates for an unrelated host B.
    #[test]
    fn wrong_hostname_rejected(seed in any::<u64>(), a in arb_host(), b in arb_host()) {
        prop_assume!(a != b);
        let mut rng = SimRng::new(seed);
        let now = SimTime::EPOCH + SimDuration::from_days(10);
        let (store, mut cas) = RootStore::os_x_like(1, SimTime::EPOCH, &mut rng);
        let leaf = cas[0].issue_leaf(&a, SimTime::EPOCH, &mut rng);
        prop_assert_eq!(
            verify_chain(&[leaf], &b, now, &store),
            Err(CertError::NameMismatch)
        );
    }

    /// Outside the validity window the verdict is Expired / NotYetValid.
    #[test]
    fn time_window_enforced(seed in any::<u64>(), host in arb_host(), offset_days in 731u64..2000) {
        let mut rng = SimRng::new(seed);
        let (store, mut cas) = RootStore::os_x_like(1, SimTime::EPOCH, &mut rng);
        let leaf = cas[0].issue_leaf(&host, SimTime::EPOCH + SimDuration::from_days(1), &mut rng);
        let too_late = SimTime::EPOCH + SimDuration::from_days(1 + offset_days);
        prop_assert_eq!(
            verify_chain(std::slice::from_ref(&leaf), &host, too_late, &store),
            Err(CertError::Expired)
        );
        prop_assert_eq!(
            verify_chain(&[leaf], &host, SimTime::EPOCH, &store),
            Err(CertError::NotYetValid)
        );
    }

    /// Fingerprints of independently issued certificates never collide in
    /// practice; a certificate equals itself.
    #[test]
    fn fingerprint_discriminates(seed in any::<u64>(), host in arb_host()) {
        let mut rng = SimRng::new(seed);
        let mut ca = CertAuthority::new_root(
            DistinguishedName::cn("Root"),
            SimTime::EPOCH,
            &mut rng,
        );
        let a = ca.issue_leaf(&host, SimTime::EPOCH, &mut rng);
        let b = ca.issue_leaf(&host, SimTime::EPOCH, &mut rng);
        prop_assert_eq!(a.fingerprint(), a.fingerprint());
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
