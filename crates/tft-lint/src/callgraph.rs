//! A conservative workspace call graph over the [`SymbolTable`], with
//! reachability queries from annotated roots.
//!
//! ## Resolution rules (the over-approximation contract)
//!
//! The engine has no type information, so edges are resolved by name:
//!
//! - **Qualified calls** `Type::method(…)` (any path whose second-to-last
//!   segment names a workspace `impl` type) resolve *exactly* to that
//!   type's methods.
//! - **Free calls** `f(…)` / `module::f(…)` resolve by last-segment name
//!   to every workspace fn with that name — suffix matching stands in for
//!   `use`-resolution. May connect same-named fns across crates:
//!   over-approximation, safe (reachability can only grow).
//! - **Method calls** `.m(…)` resolve by name to every workspace method
//!   named `m` — *except* names on [`UBIQUITOUS_METHODS`], where a
//!   name-only match would wire virtually every fn to every std container
//!   call site (`new`, `len`, `get`, …) and drown the hot-path passes in
//!   noise. This is the one deliberate **under**-approximation: a
//!   workspace method that shadows a ubiquitous std name is invisible to
//!   reachability unless called with `Type::method` syntax. Passes that
//!   ride the graph check leaf triggers (e.g. allocation macros) per
//!   function body, so the trigger itself is never missed — only the
//!   *propagation* through such a call is.
//! - **Crate boundary**: every candidate edge is filtered by the manifest
//!   dependency graph — a fn in crate `a` can only call into crate `b` if
//!   `a`'s `Cargo.toml` declares `b` (or `a == b`). Such a call couldn't
//!   compile otherwise, so this refines the name-matching without losing
//!   real edges; it is what keeps same-named fns in unrelated crates from
//!   wiring the whole workspace together.
//!
//! Reachability is a forward BFS from annotated roots (`// tft-lint:
//! hot-root`, `// tft-lint: wire-entry` — see [`crate::ast`]), recording a
//! *witness root* per reached fn so diagnostics can say which root makes a
//! finding hot. Deterministic by construction: fn ids are assigned in
//! path-sorted file order and neighbor lists are sorted and deduped.

use crate::ast::FnNode;
use crate::engine::SourceFile;
use crate::symbols::{FnId, SymbolTable};

/// Method names excluded from name-only `.m(…)` resolution because the
/// name is ubiquitous on std types (every `Vec::len` call would otherwise
/// pick up any workspace `len`). Sorted; binary-searched.
pub const UBIQUITOUS_METHODS: [&str; 42] = [
    "as_bytes",
    "as_ref",
    "as_slice",
    "as_str",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "default",
    "entry",
    "eq",
    "extend",
    "find",
    "flush",
    "fmt",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "len",
    "map",
    "new",
    "next",
    "parse",
    "pop",
    "push",
    "read",
    "remove",
    "sort",
    "split",
    "to_owned",
    "to_string",
    "trim",
    "write",
];

/// The workspace call graph: adjacency over [`FnId`]s.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `callees[id]` — sorted, deduped callee ids.
    pub callees: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Build the graph from a symbol table. Name-resolved candidate edges
    /// are kept only when the callee's crate is reachable from the caller's
    /// crate per the manifests ([`SymbolTable::edge_allowed`]) — a
    /// cross-crate call without a declared dependency cannot compile, so
    /// dropping it is a refinement, not an under-approximation.
    pub fn build(table: &SymbolTable, files: &[SourceFile]) -> CallGraph {
        let mut callees: Vec<Vec<FnId>> = vec![Vec::new(); table.len()];
        for id in 0..table.len() {
            let node = table.node(id);
            let caller_crate = &files[table.fns[id].file].crate_name;
            let mut out = Vec::new();
            for call in &node.calls {
                resolve(table, call.method, &call.path, &mut out);
            }
            out.retain(|&cand| {
                table.edge_allowed(caller_crate, &files[table.fns[cand].file].crate_name)
            });
            out.sort_unstable();
            out.dedup();
            callees[id] = out;
        }
        CallGraph { callees }
    }

    /// Forward BFS from `roots`; returns, per fn, the witness root id it
    /// was first reached from (`None` ⇒ unreachable). Roots witness
    /// themselves. Deterministic: roots are visited in ascending id order
    /// and neighbor lists are pre-sorted.
    pub fn reach_from(&self, roots: &[FnId]) -> Vec<Option<FnId>> {
        let mut witness: Vec<Option<FnId>> = vec![None; self.callees.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut sorted_roots: Vec<FnId> = roots.to_vec();
        sorted_roots.sort_unstable();
        sorted_roots.dedup();
        for &r in &sorted_roots {
            if r < witness.len() && witness[r].is_none() {
                witness[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            let w = witness[u];
            for &v in &self.callees[u] {
                if witness[v].is_none() {
                    witness[v] = w;
                    queue.push_back(v);
                }
            }
        }
        witness
    }
}

/// Append resolution candidates for one call site to `out`.
fn resolve(table: &SymbolTable, method: bool, path: &[String], out: &mut Vec<FnId>) {
    let Some(name) = path.last() else {
        return;
    };
    if method {
        // `.m(…)`: name-only, minus the ubiquitous std names.
        if UBIQUITOUS_METHODS.binary_search(&name.as_str()).is_ok() {
            return;
        }
        if let Some(ids) = table.by_name.get(name) {
            out.extend(
                ids.iter()
                    .copied()
                    .filter(|&id| table.node(id).impl_ty.is_some()),
            );
        }
        return;
    }
    // `A::…::Type::name(…)`: if the penultimate segment names a workspace
    // impl type, resolve exactly to its methods.
    if path.len() >= 2 {
        let ty = &path[path.len() - 2];
        let key = (ty.clone(), name.clone());
        if let Some(ids) = table.by_type_method.get(&key) {
            out.extend(ids.iter().copied());
            return;
        }
    }
    // Free call: suffix match by name. Methods are excluded here — plain
    // `name(…)` syntax cannot invoke a method without a receiver (UFCS is
    // covered by the qualified arm above).
    if let Some(ids) = table.by_name.get(name) {
        out.extend(
            ids.iter()
                .copied()
                .filter(|&id| table.node(id).impl_ty.is_none()),
        );
    }
}

/// Reachability bundle the passes consume: per-fn witness roots for the
/// hot-path and wire-entry domains.
#[derive(Debug, Default)]
pub struct Reachability {
    /// Per [`FnId`]: witness hot root, if hot-reachable.
    pub hot: Vec<Option<FnId>>,
    /// Per [`FnId`]: witness wire entry, if wire-reachable.
    pub wire: Vec<Option<FnId>>,
}

impl Reachability {
    /// Compute both domains from the annotated roots in the table.
    pub fn compute(table: &SymbolTable, graph: &CallGraph) -> Reachability {
        let roots_with = |pred: fn(&FnNode) -> bool| -> Vec<FnId> {
            (0..table.len())
                .filter(|&id| pred(table.node(id)))
                .collect()
        };
        Reachability {
            hot: graph.reach_from(&roots_with(|n| n.hot_root)),
            wire: graph.reach_from(&roots_with(|n| n.wire_entry)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;

    fn setup(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(path, src)| SourceFile::rust(path, "x", src))
            .collect();
        let table = SymbolTable::build(&files);
        (files, table)
    }

    fn id_of(t: &SymbolTable, name: &str) -> FnId {
        t.by_name[name][0]
    }

    #[test]
    fn free_call_chain_is_reachable() {
        let (files, t) = setup(&[(
            "crates/x/src/a.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        )]);
        let g = CallGraph::build(&t, &files);
        let reach = g.reach_from(&[id_of(&t, "root")]);
        assert!(reach[id_of(&t, "leaf")].is_some());
        assert!(reach[id_of(&t, "island")].is_none());
        // Witness attribution points at the root.
        assert_eq!(reach[id_of(&t, "leaf")], Some(id_of(&t, "root")));
    }

    #[test]
    fn qualified_call_resolves_exactly() {
        let (files, t) = setup(&[(
            "crates/x/src/a.rs",
            "impl Alpha { fn go(&self) {} }\nimpl Beta { fn go(&self) {} }\nfn root() { Alpha::go(); }",
        )]);
        let g = CallGraph::build(&t, &files);
        let reach = g.reach_from(&[id_of(&t, "root")]);
        let key_a = ("Alpha".to_string(), "go".to_string());
        let key_b = ("Beta".to_string(), "go".to_string());
        assert!(reach[t.by_type_method[&key_a][0]].is_some());
        assert!(reach[t.by_type_method[&key_b][0]].is_none());
    }

    #[test]
    fn method_call_over_approximates_by_name() {
        let (files, t) = setup(&[(
            "crates/x/src/a.rs",
            "impl Alpha { fn churn(&self) {} }\nimpl Beta { fn churn(&self) {} }\nfn root(a: Alpha) { a.churn(); }",
        )]);
        let g = CallGraph::build(&t, &files);
        let reach = g.reach_from(&[id_of(&t, "root")]);
        // Both impls reached: name-only resolution over-approximates.
        for ty in ["Alpha", "Beta"] {
            let key = (ty.to_string(), "churn".to_string());
            assert!(reach[t.by_type_method[&key][0]].is_some(), "{ty} missed");
        }
    }

    #[test]
    fn ubiquitous_method_names_do_not_propagate() {
        let (files, t) = setup(&[(
            "crates/x/src/a.rs",
            "impl Alpha { fn len(&self) { secret(); } }\nfn secret() {}\nfn root(v: Vec<u8>) { v.len(); }",
        )]);
        let g = CallGraph::build(&t, &files);
        let reach = g.reach_from(&[id_of(&t, "root")]);
        assert!(reach[id_of(&t, "secret")].is_none());
    }

    #[test]
    fn ubiquitous_list_is_sorted_for_binary_search() {
        let mut sorted = UBIQUITOUS_METHODS;
        sorted.sort_unstable();
        assert_eq!(sorted, UBIQUITOUS_METHODS);
    }

    #[test]
    fn crate_boundary_filters_undeclared_edges() {
        // `alpha` declares no dependency on `beta`, so the name-matched
        // edge alpha::root → beta::helper must be dropped; `gamma` declares
        // beta, so its edge survives.
        let files = vec![
            SourceFile::manifest(
                "crates/alpha/Cargo.toml",
                "alpha",
                "[package]\nname = \"alpha\"\n[dependencies]\n",
            ),
            SourceFile::manifest(
                "crates/gamma/Cargo.toml",
                "gamma",
                "[package]\nname = \"gamma\"\n[dependencies]\nbeta = { path = \"../beta\" }\n",
            ),
            SourceFile::rust(
                "crates/alpha/src/lib.rs",
                "alpha",
                "fn root() { helper(); }",
            ),
            SourceFile::rust("crates/beta/src/lib.rs", "beta", "pub fn helper() {}"),
            SourceFile::rust("crates/gamma/src/lib.rs", "gamma", "fn go() { helper(); }"),
        ];
        let t = SymbolTable::build(&files);
        let g = CallGraph::build(&t, &files);
        let reach_alpha = g.reach_from(&[id_of(&t, "root")]);
        assert!(reach_alpha[id_of(&t, "helper")].is_none());
        let reach_gamma = g.reach_from(&[id_of(&t, "go")]);
        assert!(reach_gamma[id_of(&t, "helper")].is_some());
    }

    #[test]
    fn reachability_roots_come_from_annotations() {
        let (files, t) = setup(&[(
            "crates/x/src/a.rs",
            "// tft-lint: hot-root\nfn probe() { helper(); }\nfn helper() {}\n// tft-lint: wire-entry\nfn decode() { scan(); }\nfn scan() {}",
        )]);
        let g = CallGraph::build(&t, &files);
        let r = Reachability::compute(&t, &g);
        assert!(r.hot[id_of(&t, "helper")].is_some());
        assert!(r.hot[id_of(&t, "scan")].is_none());
        assert!(r.wire[id_of(&t, "scan")].is_some());
        assert!(r.wire[id_of(&t, "helper")].is_none());
    }
}
