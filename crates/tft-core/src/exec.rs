//! Deterministic parallel study executor.
//!
//! The paper's selling point is scale — 1.2M vantage points measured "in
//! days, not years" (§1) — and a real measurement backend runs crawler
//! instances in parallel. This module makes [`crate::run_study`] parallel
//! **without giving up byte-identical determinism**:
//!
//! - The exit-node population is partitioned by *country* into a fixed
//!   number of shards ([`SHARD_COUNT`] — a semantic constant of the
//!   campaign plan, never derived from the machine). A node belongs to
//!   exactly one country, so shard populations are disjoint and the merged
//!   datasets have no cross-shard interference.
//! - Each (experiment × shard) pair runs on its own fork of the
//!   study-start [`World`] snapshot, drawing every random decision from a
//!   label-forked [`netsim::SimRng`] (`fork_indexed("shard", k)`). Seeds
//!   derive from the study-start clock, a per-experiment salt, and the
//!   shard index only — never from thread identity — so the worker count
//!   of the underlying [`substrate::pool`] is a pure throughput knob.
//!   Forks are cheap: the world's bulk data sits behind shared `Arc`s and
//!   copies on first write, so a shard pays only for what it mutates.
//! - All experiments of a study flow through **one work queue**
//!   (`run_wave`) rather than one pool barrier per experiment: a worker
//!   that drains the last DNS shard immediately starts an HTTP shard. The
//!   paper's experiments ran in overlapping windows (§3), so the overlap
//!   is faithful, not a shortcut.
//! - Shard results are merged in canonical experiment-major / shard-minor
//!   order (shard evidence in task order, observations re-sorted by zID /
//!   probe key), so `render_tables` and every golden are bit-identical at
//!   any worker count.
//!
//! The partition itself is LPT greedy (largest country first onto the
//! lightest shard, ties broken by country code and shard index), which is
//! deterministic and keeps shard workloads balanced.

use crate::config::StudyConfig;
use crate::obs::{DnsDataset, HttpDataset, HttpsDataset, MonitorDataset};
use crate::{dns_exp, http_exp, https_exp, monitor_exp};
use inetdb::CountryCode;
use netsim::SimRng;
use proxynet::{EvidenceMark, World};
use substrate::pool;

/// Number of population shards the study plan splits each experiment into.
///
/// Fixed (not machine-derived): the shard plan is part of the campaign's
/// semantics, and the same plan must replay on any machine. Worker count —
/// how many shards run *concurrently* — is the throughput knob.
pub const SHARD_COUNT: usize = 8;

/// Distance between the session-number ranges of adjacent shards, so a
/// merged evidence log never shows two shards reusing one session id.
const SESSION_STRIDE: u64 = 1 << 32;

/// Execution options for [`crate::study::run_study_with`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker threads used to run shards (and analyses) concurrently.
    /// Output is byte-identical at any value; this only trades wall-clock
    /// for cores.
    pub workers: usize,
}

impl ExecOptions {
    /// Run with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ExecOptions { workers }
    }
}

impl Default for ExecOptions {
    /// Default to the machine's available parallelism, uncapped. A full
    /// study wave queues `experiments × SHARD_COUNT` tasks (32 for the
    /// four-experiment study), and [`substrate::pool::Pool::run`] already
    /// clamps workers to the task count per call, so there is no benefit to
    /// capping here — the old `min(SHARD_COUNT)` cap silently threw away
    /// cores once waves grew past one experiment. Safe to machine-derive
    /// precisely because output is worker-count-invariant.
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecOptions { workers }
    }
}

/// The sampling scope an experiment runs under: which slice of the
/// population it crawls, how its probe artifacts are namespaced, and where
/// its randomness comes from.
#[derive(Debug, Clone)]
pub(crate) struct ProbeScope {
    /// Reported per-country exit counts visible to this scope's sampler.
    pub counts: Vec<(CountryCode, usize)>,
    /// Prefix for per-probe DNS labels (empty for the unsharded path, so
    /// direct `run()` callers keep their exact historical probe names).
    pub tag: String,
    /// First session number the sampler hands out.
    pub session_base: u64,
    /// Shard index, when sharded.
    shard: Option<u64>,
}

impl ProbeScope {
    /// The whole-population scope — reproduces the unsharded experiments
    /// byte-for-byte.
    pub fn full(world: &World) -> Self {
        ProbeScope {
            counts: world.reported_country_counts(),
            tag: String::new(),
            session_base: 1,
            shard: None,
        }
    }

    /// The scope for shard `index` covering `counts`.
    pub fn shard(index: usize, counts: Vec<(CountryCode, usize)>) -> Self {
        ProbeScope {
            counts,
            tag: format!("s{index}-"),
            session_base: 1 + index as u64 * SESSION_STRIDE,
            shard: Some(index as u64),
        }
    }

    /// Derive an RNG for this scope from virtual time and an experiment
    /// salt. Unsharded scopes get the experiment's historical stream;
    /// shards get an independent label-fork of it. Thread identity never
    /// enters the derivation.
    pub fn rng(&self, t0_millis: u64, salt: u64) -> SimRng {
        let rng = SimRng::new(t0_millis ^ salt);
        match self.shard {
            Some(k) => rng.fork_indexed("shard", k),
            None => rng,
        }
    }
}

/// Partition the reported per-country counts into at most `shards` groups
/// with balanced total weight (LPT greedy). Deterministic: countries are
/// considered largest-first with code tie-breaks, and land on the lightest
/// shard (lowest index on ties). Zero-count countries are dropped; the
/// result has no empty shards.
///
/// # Panics
/// Panics if no country reports any exit nodes (same contract as
/// [`crate::crawl::Sampler::new`]).
pub(crate) fn plan_shards(
    counts: &[(CountryCode, usize)],
    shards: usize,
) -> Vec<Vec<(CountryCode, usize)>> {
    let mut nonzero: Vec<(CountryCode, usize)> =
        counts.iter().filter(|(_, n)| *n > 0).copied().collect();
    assert!(!nonzero.is_empty(), "no exit nodes reported anywhere");
    // Largest first; ties in canonical country order.
    nonzero.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let k = shards.min(nonzero.len());
    let mut plans: Vec<Vec<(CountryCode, usize)>> = vec![Vec::new(); k];
    let mut weights = vec![0usize; k];
    for (cc, n) in nonzero {
        let lightest = weights
            .iter()
            .enumerate()
            .min_by_key(|(i, w)| (**w, *i))
            .map(|(i, _)| i)
            .expect("k >= 1");
        plans[lightest].push((cc, n));
        weights[lightest] += n;
    }
    // Within a shard, canonical country order (the Sampler's cumulative
    // weight table is order-sensitive).
    for plan in &mut plans {
        plan.sort();
    }
    plans
}

/// One experiment of the study, as a wave-schedulable unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Experiment {
    /// The d₁/d₂ NXDOMAIN experiment.
    Dns,
    /// The four-object content-comparison experiment.
    Http,
    /// The two-phase CONNECT certificate experiment.
    Https,
    /// The unique-domain refetch experiment.
    Monitor,
}

/// One experiment's merged dataset, so a heterogeneous wave can return
/// through a single channel.
pub(crate) enum ExpData {
    /// Merged DNS dataset.
    Dns(DnsDataset),
    /// Merged HTTP dataset.
    Http(HttpDataset),
    /// Merged HTTPS dataset.
    Https(HttpsDataset),
    /// Merged monitoring dataset.
    Monitor(MonitorDataset),
}

/// Per-shard output of one wave task.
enum ShardData {
    Dns(DnsDataset),
    Http(HttpDataset),
    Https(HttpsDataset),
    Monitor(MonitorDataset),
}

/// One unit of wave work: experiment, shard index, its country plan. The
/// shard's world fork is materialized inside the task (cheap `Arc` bump),
/// so a supervised retry re-forks from the same pristine snapshot and is
/// a pure function of this tuple.
type WaveTask = (Experiment, usize, Vec<(CountryCode, usize)>);

/// Run `experiments` as **one wave**: every (experiment × shard) pair
/// becomes a task in a single work queue, all forked from the same
/// study-start snapshot `base`, and the results are absorbed into `live`
/// in canonical experiment-major / shard-minor order against `mark`.
///
/// Compared to the old one-queue-per-experiment design this removes three
/// full pool barriers from a four-experiment study: a worker that finishes
/// its last DNS shard immediately picks up an HTTP shard instead of idling
/// until the slowest DNS shard lands. It is also what the paper actually
/// did — the experiments ran in *overlapping* windows (§3), not serial
/// phases.
///
/// Determinism: every task forks `base` (cheap — the world's bulk data is
/// behind shared `Arc`s and copies on first write, see
/// [`proxynet::World`]), seeds from `base`'s clock plus a per-experiment
/// salt and the shard index, and never sees another task's effects.
/// Absorb/merge order is fixed by the task list, not by scheduling, so the
/// returned datasets and `live`'s evidence log are byte-identical at any
/// worker count.
///
/// `deep_fork` is a test seam: when set, every shard world is deeply
/// unshared after forking ([`World::unshare`]), which reproduces the old
/// whole-clone execution exactly and pins the copy-on-write overlay to it.
///
/// `fault` selects supervised execution: per-task panics are contained and
/// retried per the policy ([`substrate::pool::Pool::run_supervised`]); each
/// retry re-forks the shard world from `base`, so an attempt that succeeds
/// on retry `k` is byte-identical to one that succeeded immediately. Tasks
/// still failing after every retry abort the wave with a named panic — a
/// study must never render a report with a missing shard.
// tft-lint: hot-root — shard bodies: every per-probe loop runs inside this
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_wave(
    live: &mut World,
    base: &World,
    mark: &EvidenceMark,
    cfg: &StudyConfig,
    workers: usize,
    experiments: &[Experiment],
    deep_fork: bool,
    fault: Option<&pool::FaultPolicy>,
) -> Vec<ExpData> {
    let plans = plan_shards(&base.reported_country_counts(), SHARD_COUNT);
    let tasks: Vec<WaveTask> = experiments
        .iter()
        .flat_map(|&exp| {
            plans
                .iter()
                .enumerate()
                // tft-lint: allow(hot-path-alloc, reason = "per-wave task list, not per-probe: plan is a handful of country codes per shard")
                .map(move |(k, plan)| (exp, k, plan.clone()))
        })
        .collect();
    let run_task = |&(exp, k, ref plan): &WaveTask| {
        // tft-lint: allow(hot-path-alloc, reason = "per-attempt fork, not per-probe: base.clone() only bumps the shared world's Arcs, and re-forking per attempt is what makes supervised retries pure")
        let mut shard_world = base.clone();
        if deep_fork {
            shard_world.unshare();
        }
        // tft-lint: allow(hot-path-alloc, reason = "per-attempt scope setup: a handful of country codes per shard")
        let scope = ProbeScope::shard(k, plan.clone());
        let data = match exp {
            Experiment::Dns => ShardData::Dns(dns_exp::run_shard(&mut shard_world, cfg, scope)),
            Experiment::Http => ShardData::Http(http_exp::run_shard(&mut shard_world, cfg, scope)),
            Experiment::Https => {
                ShardData::Https(https_exp::run_shard(&mut shard_world, cfg, scope))
            }
            Experiment::Monitor => {
                ShardData::Monitor(monitor_exp::run_shard(&mut shard_world, cfg, scope))
            }
        };
        (data, shard_world)
    };
    let finished: Vec<(ShardData, World)> = match fault {
        None => pool::par_map(workers, tasks, |task| run_task(&task)),
        Some(policy) => {
            let (results, report) =
                pool::Pool::new(workers).run_supervised(&tasks, policy, |_, task| run_task(task));
            if !report.quarantined.is_empty() {
                let detail: Vec<String> = report
                    .quarantined
                    .iter()
                    .map(|(i, msg)| {
                        let (exp, k, _) = &tasks[*i];
                        // tft-lint: allow(hot-path-alloc, reason = "failure path only: formatting quarantine details immediately before the wave aborts")
                        format!("{exp:?} shard {k} (task {i}): {msg}")
                    })
                    .collect();
                panic!(
                    "supervised wave: {} task(s) poisoned after {} retries: {}",
                    detail.len(),
                    policy.max_retries,
                    detail.join("; ")
                );
            }
            results
                .into_iter()
                .map(|r| r.expect("no task is poisoned, checked above"))
                .collect()
        }
    };

    // Absorb in task order (experiment-major, shard-minor) — the same
    // canonical order regardless of worker count, and the same order a
    // stage-at-a-time driver produces across separate waves.
    let mut datas = Vec::with_capacity(finished.len());
    for (data, shard_world) in finished {
        live.absorb_evidence(&shard_world, mark);
        datas.push(data);
    }

    let shard_count = plans.len();
    let mut parts = datas.into_iter();
    experiments
        .iter()
        .map(|&exp| {
            let chunk = parts.by_ref().take(shard_count);
            match exp {
                Experiment::Dns => ExpData::Dns(merge_dns(
                    chunk
                        .map(|d| match d {
                            ShardData::Dns(d) => d,
                            _ => unreachable!("task order is experiment-major"),
                        })
                        .collect(),
                )),
                Experiment::Http => ExpData::Http(merge_http(
                    chunk
                        .map(|d| match d {
                            ShardData::Http(d) => d,
                            _ => unreachable!("task order is experiment-major"),
                        })
                        .collect(),
                )),
                Experiment::Https => ExpData::Https(merge_https(
                    chunk
                        .map(|d| match d {
                            ShardData::Https(d) => d,
                            _ => unreachable!("task order is experiment-major"),
                        })
                        .collect(),
                )),
                Experiment::Monitor => ExpData::Monitor(merge_monitor(
                    chunk
                        .map(|d| match d {
                            ShardData::Monitor(d) => d,
                            _ => unreachable!("task order is experiment-major"),
                        })
                        .collect(),
                )),
            }
        })
        .collect()
}

/// Merge per-shard DNS datasets: counters sum, observations re-sorted into
/// canonical zID order (shard populations are disjoint, so zIDs are unique
/// across parts; any cross-shard duplicate — impossible by construction
/// for DNS — would be dropped deterministically, keeping the lowest shard).
pub(crate) fn merge_dns(parts: Vec<DnsDataset>) -> DnsDataset {
    let mut merged = DnsDataset::default();
    for part in parts {
        merged.observations.extend(part.observations);
        merged.filtered_same_anycast += part.filtered_same_anycast;
        merged.duplicates += part.duplicates;
        merged.discarded += part.discarded;
        merged.samples_issued += part.samples_issued;
        merged.quality.merge(&part.quality);
    }
    merged.observations.sort_by_key(|a| a.zid);
    merged.observations.dedup_by(|a, b| a.zid == b.zid);
    merged
}

/// Merge per-shard HTTP datasets (canonical zID order). Cross-shard zID
/// duplicates are possible here — phase-2 revisits target an AS's home
/// country, which may lie outside the shard's partition — and are dropped
/// deterministically (stable sort keeps the lowest shard's observation).
pub(crate) fn merge_http(parts: Vec<HttpDataset>) -> HttpDataset {
    let mut merged = HttpDataset::default();
    for part in parts {
        merged.observations.extend(part.observations);
        merged.samples_issued += part.samples_issued;
        merged.skipped_quota += part.skipped_quota;
        merged.quality.merge(&part.quality);
    }
    merged.observations.sort_by_key(|a| a.zid);
    merged.observations.dedup_by(|a, b| a.zid == b.zid);
    merged
}

/// Merge per-shard HTTPS datasets (canonical zID order).
pub(crate) fn merge_https(parts: Vec<HttpsDataset>) -> HttpsDataset {
    let mut merged = HttpsDataset::default();
    for part in parts {
        merged.observations.extend(part.observations);
        merged.skipped_unranked += part.skipped_unranked;
        merged.samples_issued += part.samples_issued;
        merged.quality.merge(&part.quality);
    }
    merged.observations.sort_by_key(|a| a.zid);
    merged.observations.dedup_by(|a, b| a.zid == b.zid);
    merged
}

/// Merge per-shard monitoring datasets (canonical probe-domain order, the
/// same invariant the unsharded experiment maintains).
pub(crate) fn merge_monitor(parts: Vec<MonitorDataset>) -> MonitorDataset {
    let mut merged = MonitorDataset::default();
    let mut window: Option<u64> = None;
    for part in parts {
        // The window length is a config-derived property of the experiment,
        // not additive shard data: every shard that actually ran probes
        // reports the same value. Take it from the first such shard (not
        // the last — a trailing empty shard would otherwise zero it out)
        // and check the rest agree.
        if !part.observations.is_empty() || part.samples_issued > 0 {
            match window {
                None => window = Some(part.window_hours),
                Some(w) => debug_assert_eq!(
                    w, part.window_hours,
                    "shards disagree on the monitoring window length"
                ),
            }
        }
        merged.observations.extend(part.observations);
        merged.samples_issued += part.samples_issued;
        merged.quality.merge(&part.quality);
    }
    merged.window_hours = window.unwrap_or_default();
    merged.observations.sort_by(|a, b| a.domain.cmp(&b.domain));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    #[test]
    fn plan_is_deterministic_and_balanced() {
        let counts = vec![
            (cc("US"), 900),
            (cc("DE"), 300),
            (cc("MY"), 300),
            (cc("BR"), 200),
            (cc("IN"), 100),
        ];
        let a = plan_shards(&counts, 2);
        let b = plan_shards(&counts, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // LPT: US alone on one shard, everything else on the other.
        let weights: Vec<usize> = a
            .iter()
            .map(|p| p.iter().map(|(_, n)| n).sum::<usize>())
            .collect();
        assert_eq!(weights.iter().sum::<usize>(), 1800);
        assert!(weights.iter().all(|&w| w >= 900 / 2));
        // No shard is empty, no country dropped or duplicated.
        let mut all: Vec<_> = a.iter().flatten().collect();
        all.sort();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn fewer_countries_than_shards_yields_fewer_shards() {
        let counts = vec![(cc("XA"), 10), (cc("XB"), 5)];
        let plans = plan_shards(&counts, SHARD_COUNT);
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn zero_count_countries_are_dropped() {
        let counts = vec![(cc("US"), 10), (cc("KP"), 0)];
        let plans = plan_shards(&counts, 4);
        assert_eq!(plans, vec![vec![(cc("US"), 10)]]);
    }

    #[test]
    #[should_panic(expected = "no exit nodes")]
    fn all_zero_panics() {
        plan_shards(&[(cc("US"), 0)], 4);
    }

    #[test]
    fn scope_rngs_are_shard_stable() {
        let a = ProbeScope::shard(3, vec![(cc("US"), 1)]);
        let b = ProbeScope::shard(3, vec![(cc("US"), 1)]);
        let mut ra = a.rng(1234, 0xD45);
        let mut rb = b.rng(1234, 0xD45);
        use netsim::rng::RngExt;
        assert_eq!(
            ra.random_range(0..u64::MAX),
            rb.random_range(0..u64::MAX),
            "same shard, same stream"
        );
        let mut rc = ProbeScope::shard(4, vec![(cc("US"), 1)]).rng(1234, 0xD45);
        assert_ne!(
            ra.random_range(0..u64::MAX),
            rc.random_range(0..u64::MAX),
            "different shards, independent streams"
        );
    }

    #[test]
    fn overlay_forks_match_deep_clones_at_any_worker_count() {
        // The shared-`Arc` world fork is a pure allocation optimization:
        // running every experiment wave on deeply-unshared shard worlds
        // (the historical whole-clone executor) must produce byte-identical
        // datasets AND byte-identical absorbed evidence, at every worker
        // count. `deep_fork` flips the seam inside `run_wave` itself, so
        // the two paths differ only in how shard worlds are materialized.
        let cfg = StudyConfig {
            min_nodes_per_country: 5,
            min_nodes_per_dns_server: 3,
            ..StudyConfig::default()
        };
        let all = [
            Experiment::Dns,
            Experiment::Http,
            Experiment::Https,
            Experiment::Monitor,
        ];
        let run = |workers: usize, deep_fork: bool| {
            let mut world = worldgen::build(&worldgen::smoke_spec(7)).world;
            let base = world.clone();
            let mark = world.evidence_mark();
            let out = run_wave(
                &mut world, &base, &mark, &cfg, workers, &all, deep_fork, None,
            );
            let data: Vec<String> = out
                .iter()
                .map(|d| match d {
                    ExpData::Dns(d) => format!("{d:?}"),
                    ExpData::Http(d) => format!("{d:?}"),
                    ExpData::Https(d) => format!("{d:?}"),
                    ExpData::Monitor(d) => format!("{d:?}"),
                })
                .collect();
            (
                data,
                format!("{:?}", world.now()),
                world.bytes_billed(&cfg.customer),
            )
        };
        let reference = run(1, true);
        for workers in [1usize, 2, 8, 16, 32] {
            let overlay = run(workers, false);
            assert_eq!(
                overlay, reference,
                "workers={workers}: overlay fork diverged from deep clone"
            );
        }
    }

    #[test]
    fn session_bases_are_disjoint() {
        let a = ProbeScope::shard(0, vec![(cc("US"), 1)]);
        let b = ProbeScope::shard(1, vec![(cc("US"), 1)]);
        assert!(b.session_base - a.session_base >= SESSION_STRIDE);
    }
}
