//! Workspace symbol table: every recognized `fn` across every crate,
//! indexed for the call-graph resolver.
//!
//! Resolution here is *name-based*, not type-based — the engine has no type
//! checker. The table therefore answers two deliberately coarse questions:
//! "which fns are named `m`?" and "which fns are methods `m` on a type
//! named `T`?". The resolver in [`crate::callgraph`] layers its
//! over-approximation rules on top.

use crate::ast::{self, Ast};
use crate::engine::{FileKind, SourceFile};
use std::collections::BTreeMap;

/// Globally unique function id: an index into [`SymbolTable::fns`].
pub type FnId = usize;

/// One function's location: which file (index into the engine's file list)
/// and which node in that file's [`Ast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnLoc {
    /// Index into the `SourceFile` slice the table was built from.
    pub file: usize,
    /// Index into that file's `Ast::fns`.
    pub fn_idx: usize,
}

/// The workspace symbol table: per-file ASTs plus name indices over every
/// recognized function.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Per-file parse results, parallel to the engine's file list
    /// (manifests get an empty [`Ast`]).
    pub asts: Vec<Ast>,
    /// Flat fn list; the index is the [`FnId`].
    pub fns: Vec<FnLoc>,
    /// Name → ids of every fn with that name (free fns and methods alike).
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// (impl type name, method name) → ids. Only fns inside `impl` blocks
    /// appear here.
    pub by_type_method: BTreeMap<(String, String), Vec<FnId>>,
    /// Crate name → declared dependency crate names (normalized `-`→`_`,
    /// sorted), parsed from each crate's `Cargo.toml`. Crates without a
    /// scanned manifest are absent.
    pub crate_deps: BTreeMap<String, Vec<String>>,
}

/// Normalize a crate name for comparison (`-` and `_` are interchangeable
/// in Cargo).
fn norm_crate(name: &str) -> String {
    name.replace('-', "_")
}

/// Extract `(package name, dependency names)` from manifest text. Line-wise:
/// tracks `[section]` headers; `name = "…"` under `[package]`, keys under
/// any `…dependencies]` section (covers dev-, build-, and target tables).
fn manifest_deps(text: &str) -> (Option<String>, Vec<String>) {
    let mut name = None;
    let mut deps = Vec::new();
    let mut in_package = false;
    let mut in_deps = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            let section = line.trim_start_matches('[').trim_end_matches(']');
            in_package = section == "package";
            in_deps = section.ends_with("dependencies");
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        // Dotted keys (`foo.workspace = true`) name the dep before the dot.
        let key = key.trim().trim_matches('"').split('.').next().unwrap_or("");
        if key.is_empty() {
            continue;
        }
        if in_package && key == "name" {
            name = Some(value.trim().trim_matches('"').to_string());
        } else if in_deps {
            deps.push(norm_crate(key));
        }
    }
    deps.sort_unstable();
    deps.dedup();
    (name, deps)
}

impl SymbolTable {
    /// Build the table from pre-parsed ASTs (parallel to `files`).
    pub fn from_asts(files: &[SourceFile], asts: Vec<Ast>) -> SymbolTable {
        let mut table = SymbolTable {
            asts,
            ..SymbolTable::default()
        };
        debug_assert_eq!(files.len(), table.asts.len());
        for file in files {
            if file.kind == FileKind::Manifest {
                let (name, deps) = manifest_deps(&file.text);
                let name = name.unwrap_or_else(|| file.crate_name.clone());
                table.crate_deps.insert(norm_crate(&name), deps);
            }
        }
        for (file_idx, ast) in table.asts.iter().enumerate() {
            for (fn_idx, f) in ast.fns.iter().enumerate() {
                let id: FnId = table.fns.len();
                table.fns.push(FnLoc {
                    file: file_idx,
                    fn_idx,
                });
                table.by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(ty) = &f.impl_ty {
                    table
                        .by_type_method
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        table
    }

    /// Build the table by parsing every Rust file serially (test helper;
    /// the engine parses in parallel and calls [`SymbolTable::from_asts`]).
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let asts = files
            .iter()
            .map(|f| {
                if f.kind == FileKind::Rust {
                    ast::parse(f)
                } else {
                    Ast::default()
                }
            })
            .collect();
        SymbolTable::from_asts(files, asts)
    }

    /// Whether a call edge from `caller_crate` into `callee_crate` is
    /// possible: same crate, or the callee appears in the caller's declared
    /// dependencies. A caller crate with no scanned manifest keeps the full
    /// over-approximation (edges to everything) — refinement only ever uses
    /// facts the manifests actually state.
    pub fn edge_allowed(&self, caller_crate: &str, callee_crate: &str) -> bool {
        if caller_crate == callee_crate {
            return true;
        }
        match self.crate_deps.get(&norm_crate(caller_crate)) {
            Some(deps) => deps.binary_search(&norm_crate(callee_crate)).is_ok(),
            None => true,
        }
    }

    /// The AST node behind `id`.
    pub fn node(&self, id: FnId) -> &ast::FnNode {
        let loc = self.fns[id];
        &self.asts[loc.file].fns[loc.fn_idx]
    }

    /// Total recognized fns.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True when no fns were recognized.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// A `file.rs:name` label for diagnostics (short file name only — the
    /// full rel_path is on the diagnostic itself).
    pub fn label(&self, files: &[SourceFile], id: FnId) -> String {
        let loc = self.fns[id];
        let node = self.node(id);
        let short = files[loc.file]
            .rel_path
            .rsplit('/')
            .next()
            .unwrap_or(&files[loc.file].rel_path);
        match &node.impl_ty {
            Some(ty) => format!("{short}:{ty}::{}", node.name),
            None => format!("{short}:{}", node.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_free_fns_and_methods() {
        let files = vec![
            SourceFile::rust(
                "crates/a/src/lib.rs",
                "a",
                "pub fn free() {}\nimpl Gadget { pub fn spin(&self) {} }",
            ),
            SourceFile::rust("crates/b/src/lib.rs", "b", "pub fn spin() {}"),
        ];
        let t = SymbolTable::build(&files);
        assert_eq!(t.len(), 3);
        assert_eq!(t.by_name["spin"].len(), 2);
        assert_eq!(t.by_name["free"].len(), 1);
        let key = ("Gadget".to_string(), "spin".to_string());
        assert_eq!(t.by_type_method[&key].len(), 1);
        let gadget_spin = t.by_type_method[&key][0];
        assert_eq!(t.node(gadget_spin).impl_ty.as_deref(), Some("Gadget"));
        assert_eq!(t.label(&files, gadget_spin), "lib.rs:Gadget::spin");
    }
}
