//! Chaos campaigns against the full pipeline: scripted corruption must
//! never fabricate violations, damaged evidence must land in quarantine,
//! and the data-quality annex must account for every probe the study lost.
//!
//! This is the robustness counterpart of `negative_control.rs`: same clean
//! world, but with a corruption- and truncation-only fault campaign
//! running over every exit-node link.

use std::sync::OnceLock;

use tft::netsim::{FaultCampaign, FaultInjector, SimDuration};
use tft::prelude::*;
use tft::proxynet::{AttemptOutcome, CircuitBreakerConfig, RetryPolicy, DEFAULT_REQUEST_DEADLINE};
use tft::tft_core::obs::DnsOutcome;
use tft::worldgen::{chaos_corruption_spec, smoke_spec};

struct Run {
    report: StudyReport,
    cfg: StudyConfig,
}

fn run() -> &'static Run {
    static RUN: OnceLock<Run> = OnceLock::new();
    RUN.get_or_init(|| {
        let scale = 0.004;
        let mut built = build(&chaos_corruption_spec(scale, 0xC405));
        let cfg = StudyConfig::scaled(scale);
        let report = run_study(&mut built.world, &cfg);
        Run { report, cfg }
    })
}

// -- the chaos negative control -------------------------------------------

#[test]
fn corruption_campaign_fabricates_no_violations() {
    let r = run();
    assert_eq!(r.report.dns.hijacked, 0);
    assert!(r
        .report
        .dns_data
        .observations
        .iter()
        .all(|o| matches!(o.outcome, DnsOutcome::NotHijacked)));
    assert_eq!(r.report.http.html_modified, 0);
    assert_eq!(r.report.http.image_modified, 0);
    assert!(r.report.http.signatures.is_empty());
    assert_eq!(r.report.https.replaced_nodes, 0);
    assert!(r.report.https.issuers.is_empty());
    assert_eq!(r.report.monitor.monitored_nodes, 0);
    assert!(r.report.monitor.entities.is_empty());
}

#[test]
fn corruption_campaign_still_measures_a_population() {
    let r = run();
    assert!(r.report.dns.nodes > 1_000, "{}", r.report.dns.nodes);
    assert!(r.report.https.nodes > 500, "{}", r.report.https.nodes);
}

#[test]
fn damaged_evidence_is_quarantined_not_analyzed() {
    let r = run();
    // The campaign corrupts and truncates 6% of deliveries each, so the
    // HTTP experiment must have quarantined a visible amount of evidence.
    let http = r.report.http_data.quality.totals();
    assert!(
        http.in_quarantine() > 0,
        "a 12% corruption campaign quarantined nothing"
    );
    assert!(http.truncated > 0, "truncations must be classified as such");
    assert!(
        http.quarantined > 0,
        "corruptions must fail the refetch check"
    );

    // Every quarantined object result carries no modified body, so the
    // analysis layer (which keys off `modified_body`) cannot see it.
    let mut retained = 0usize;
    for obs in &r.report.http_data.observations {
        for res in &obs.results {
            if res.quarantine.is_some() {
                retained += 1;
                assert!(res.modified_body.is_none());
                assert!(!res.is_modified());
            }
        }
    }
    assert!(
        retained > 0,
        "quarantined results should remain visible as data"
    );
    // The ledger counts every quarantined fetch, including ones whose
    // observation was later discarded (churn, duplicates): it can only be
    // larger than what the retained observations show.
    assert!(http.in_quarantine() >= retained);
}

#[test]
fn quality_ledger_accounts_for_losses_in_every_experiment() {
    let r = run();
    // Monitoring is the exception on loss: corrupted bait payloads still
    // deliver, and monitor detection watches the web-server log rather
    // than payload integrity, so its ledger stays loss-free here.
    for (name, q, expect_loss) in [
        ("dns", &r.report.dns_data.quality, true),
        ("http", &r.report.http_data.quality, true),
        ("https", &r.report.https_data.quality, true),
        ("monitoring", &r.report.monitor_data.quality, false),
    ] {
        let t = q.totals();
        assert!(t.total() > 0, "{name}: no dispositions recorded");
        assert!(t.delivered() > 0, "{name}: nothing delivered");
        if expect_loss {
            assert!(
                t.lost() > 0,
                "{name}: a 12% corruption campaign must cost some probes"
            );
        }
    }
}

#[test]
fn annex_accounts_for_every_quarantined_probe() {
    let r = run();
    let annex = render_annex(&r.report, &r.cfg);
    assert!(annex.contains("Annex A"), "{annex}");
    for (section, q) in [
        ("DNS", &r.report.dns_data.quality),
        ("HTTP", &r.report.http_data.quality),
        ("HTTPS", &r.report.https_data.quality),
        ("monitoring", &r.report.monitor_data.quality),
    ] {
        assert!(
            annex.contains(section),
            "missing section {section}\n{annex}"
        );
        let n = q.totals().in_quarantine();
        if n > 0 {
            let line =
                format!("quarantined evidence excluded from violation analysis: {n} probe(s)");
            assert!(annex.contains(&line), "missing {line:?} in\n{annex}");
        }
    }
}

// -- transport-level chaos knobs, exercised directly ----------------------

/// Register `host` on the study's own web server so `proxy_get` has a
/// destination, mirroring the `fault_tolerance.rs` setup.
fn register_probe_host(world: &mut World, label: &str) -> String {
    let apex = world.auth_apex().clone();
    let name = apex.child(label).expect("valid label");
    let host = name.to_string();
    let web_ip = world.web_ip();
    world.auth_server_mut().zone_mut().add_a(name, web_ip);
    world.web_server_mut().put(
        &host,
        "/",
        tft::httpwire::Response::ok("text/html", b"chaos probe".to_vec()),
    );
    host
}

#[test]
fn stalls_burn_the_request_deadline() {
    let mut built = build(&smoke_spec(0x57A1));
    let host = register_probe_host(&mut built.world, "stall-probe");
    built
        .world
        .set_fault_campaign(FaultCampaign::uniform(FaultInjector {
            stall_chance: 1.0,
            ..FaultInjector::none()
        }));

    let before = built.world.now();
    let opts = UsernameOptions::new("chaos-test").session(1);
    match built.world.proxy_get(&opts, &Uri::http(&host, "/")) {
        Err(ProxyError::DeadlineExceeded(debug)) => {
            assert!(!debug.attempts.is_empty());
            assert!(debug
                .attempts
                .iter()
                .all(|a| a.outcome == AttemptOutcome::TimedOut));
        }
        other => panic!("a permanently stalled link must hit the deadline, got {other:?}"),
    }
    // The stalled wait consumed the whole 20 s budget in virtual time.
    assert!(built.world.now() >= before + DEFAULT_REQUEST_DEADLINE);
}

#[test]
fn circuit_breakers_fail_fast_after_an_outage() {
    let mut built = build(&smoke_spec(0xB4EA));
    let host = register_probe_host(&mut built.world, "breaker-probe");
    let ids: Vec<_> = built.world.node_ids().collect();
    for id in ids {
        built.world.node_mut(id).online = false;
    }
    // Per-ISP breakers: the smoke world has only a handful of ASes, so one
    // failed request trips them all and subsequent picks are skipped.
    built.world.set_circuit_breaker(
        None,
        Some(CircuitBreakerConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(3_600),
        }),
    );

    // First request exhausts its retries against offline nodes, tripping
    // one breaker per attempt.
    let opts = UsernameOptions::new("chaos-test").session(2);
    match built.world.proxy_get(&opts, &Uri::http(&host, "/")) {
        Err(ProxyError::AllRetriesFailed(debug)) => {
            // The breaker trips mid-request: the first pick fails offline,
            // later picks from the same AS may already be skipped.
            assert!(debug.attempts.iter().all(|a| matches!(
                a.outcome,
                AttemptOutcome::Offline | AttemptOutcome::CircuitOpen
            )));
            assert!(debug
                .attempts
                .iter()
                .any(|a| a.outcome == AttemptOutcome::Offline));
        }
        other => panic!("expected AllRetriesFailed, got {other:?}"),
    }

    // Keep hammering: once every candidate the picker offers sits behind
    // an open circuit, the request fails fast without touching the link.
    let mut saw_fast_failure = false;
    for session in 3..40 {
        let opts = UsernameOptions::new("chaos-test").session(session);
        match built.world.proxy_get(&opts, &Uri::http(&host, "/")) {
            Err(ProxyError::CircuitOpen(debug)) => {
                assert!(debug
                    .attempts
                    .iter()
                    .all(|a| a.outcome == AttemptOutcome::CircuitOpen));
                saw_fast_failure = true;
                break;
            }
            Err(ProxyError::AllRetriesFailed(_)) => continue,
            other => panic!("expected a failure, got {other:?}"),
        }
    }
    assert!(saw_fast_failure, "breakers never produced a fast failure");
}

#[test]
fn retry_backoff_stretches_virtual_time() {
    let mut built = build(&smoke_spec(0xBACC));
    let host = register_probe_host(&mut built.world, "backoff-probe");
    built
        .world
        .set_fault_campaign(FaultCampaign::uniform(FaultInjector::lossy(1.0)));
    built.world.set_request_deadline(None);
    built.world.set_retry_policy(RetryPolicy::exponential(
        SimDuration::from_secs(1),
        SimDuration::from_secs(8),
    ));

    let before = built.world.now();
    let opts = UsernameOptions::new("chaos-test").session(50);
    match built.world.proxy_get(&opts, &Uri::http(&host, "/")) {
        Err(ProxyError::AllRetriesFailed(debug)) => {
            let failed = debug.attempts.len();
            assert!(failed >= 2, "total loss must exhaust retries");
            // Backoff sleeps at least base * 2^n before retry n+1; with
            // every attempt dropped the request stretches virtual time by
            // at least the sum of the floors.
            let floor: u64 = (0..failed as u32).map(|n| (1u64 << n).min(8)).sum();
            assert!(
                built.world.now() >= before + SimDuration::from_secs(floor),
                "backoff added less than its deterministic floor"
            );
        }
        other => panic!("expected AllRetriesFailed under total loss, got {other:?}"),
    }
}
