//! Content-monitoring watch: the §7 pipeline — unique per-node domains,
//! a 24-hour observation window, entity attribution, and the Figure 5
//! delay CDFs.
//!
//! ```sh
//! cargo run --release --example content_monitor_watch [scale]
//! ```

use tft::prelude::*;
use tft::tft_core::report::{figures, tables};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("building calibrated world (scale {scale})…");
    let mut built = build(&paper_spec(scale, 0x0B5));
    let cfg = StudyConfig::scaled(scale);

    println!("probing unique domains and holding a 24 h observation window…");
    let data = tft::tft_core::monitor_exp::run(&mut built.world, &cfg);
    let monitored = data
        .observations
        .iter()
        .filter(|o| !o.unexpected.is_empty())
        .count();
    println!(
        "  {} nodes probed, {} saw unexpected refetches ({:.2}%; paper 1.5%)",
        data.observations.len(),
        monitored,
        100.0 * monitored as f64 / data.observations.len().max(1) as f64
    );

    let analysis = tft::tft_core::analysis::monitor::analyze(&data, &built.world, &cfg);
    print!("{}", tables::table9(&analysis));
    println!("{}", figures::figure5(&analysis));

    // Show one concrete monitored node's timeline.
    if let Some(obs) = data.observations.iter().find(|o| o.unexpected.len() >= 2) {
        println!("example node {} ({}):", obs.zid, obs.domain);
        if let Some(own) = &obs.own_request {
            println!("  own request       at {} from {}", own.at, own.src);
        }
        for e in &obs.unexpected {
            println!(
                "  unexpected fetch  at {} from {} (UA: {})",
                e.at,
                e.src,
                e.user_agent.as_deref().unwrap_or("-")
            );
        }
    }
}
