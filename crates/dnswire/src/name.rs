//! Domain names: label sequences with RFC 1035 length limits and
//! case-insensitive equality.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Maximum length of one label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum total length of a name on the wire (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name, stored as lowercase labels.
///
/// DNS names compare case-insensitively; we canonicalize to lowercase at
/// construction so `Eq`/`Hash`/`Ord` behave correctly everywhere (zone maps,
/// query logs, dedup sets).
///
/// Labels live behind an `Arc`: names are built once (parse, decode) and
/// then copied into queries, cache keys, zone lookups, and log entries —
/// a `clone` is a refcount bump, not a per-label string copy. All derived
/// comparisons delegate to the label slice, so ordering and hashing are
/// identical to the owned representation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DnsName {
    labels: Arc<[String]>,
}

/// Errors constructing a [`DnsName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label was empty (consecutive dots or leading dot).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// The whole name exceeded 255 octets on the wire.
    NameTooLong,
    /// A label contained a byte outside the hostname-safe set.
    BadCharacter(char),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {l:?}"),
            NameError::NameTooLong => write!(f, "name exceeds 255 octets"),
            NameError::BadCharacter(c) => write!(f, "bad character in name: {c:?}"),
        }
    }
}

impl std::error::Error for NameError {}

impl DnsName {
    /// The root name (zero labels).
    pub fn root() -> Self {
        DnsName {
            labels: Arc::from([]),
        }
    }

    /// Parse from dotted notation ("www.example.com", trailing dot allowed).
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(DnsName::root());
        }
        let mut labels = Vec::new();
        for label in s.split('.') {
            if label.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(label.to_string()));
            }
            for c in label.chars() {
                // Hostname-safe plus underscore (seen in real zones) and '*'
                // (wildcard owner names).
                if !(c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '*') {
                    return Err(NameError::BadCharacter(c));
                }
            }
            labels.push(label.to_ascii_lowercase());
        }
        let name = DnsName {
            labels: labels.into(),
        };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(NameError::NameTooLong);
        }
        Ok(name)
    }

    /// Construct from labels (already validated elsewhere, e.g. the wire
    /// decoder, which enforces limits itself).
    pub(crate) fn from_labels(labels: Vec<String>) -> Self {
        DnsName {
            labels: labels.into(),
        }
    }

    /// The labels, most-specific first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// True if this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of this name in wire encoding (uncompressed): one length octet
    /// per label plus the label bytes, plus the terminating zero octet.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// True if `self` is a subdomain of `ancestor` (proper or equal).
    pub fn is_subdomain_of(&self, ancestor: &DnsName) -> bool {
        self.labels.ends_with(&ancestor.labels)
    }

    /// The parent name (None at the root).
    pub fn parent(&self) -> Option<DnsName> {
        self.labels.split_first().map(|(_, rest)| DnsName {
            labels: rest.to_vec().into(),
        })
    }

    /// Prepend a label, producing a child name.
    pub fn child(&self, label: &str) -> Result<DnsName, NameError> {
        let mut s = label.to_string();
        if !self.is_root() {
            s.push('.');
            s.push_str(&self.to_string());
        }
        DnsName::parse(&s)
    }

    /// True if the leftmost label is `*` (wildcard owner name).
    pub fn is_wildcard(&self) -> bool {
        self.labels.first().map(|l| l == "*").unwrap_or(false)
    }

    /// Replace the leftmost label with `*`.
    ///
    /// # Panics
    /// Panics on the root name.
    pub fn to_wildcard(&self) -> DnsName {
        assert!(!self.is_root(), "root has no wildcard form");
        let mut labels = self.labels.to_vec();
        // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "documented API-contract panic: the assert above guarantees a leftmost label")
        labels[0] = "*".to_string();
        DnsName {
            labels: labels.into(),
        }
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        f.write_str(&self.labels.join("."))
    }
}

impl FromStr for DnsName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

impl substrate::json::ToJson for DnsName {
    fn to_json(&self) -> substrate::json::Json {
        substrate::json::Json::Str(self.to_string())
    }
}

impl substrate::json::FromJson for DnsName {
    fn from_json(v: &substrate::json::Json) -> Result<Self, substrate::json::JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| substrate::json::JsonError::shape("DnsName: expected string"))?;
        DnsName::parse(s).map_err(|e| substrate::json::JsonError::shape(format!("DnsName: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = DnsName::parse("WWW.Example.COM").unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn trailing_dot_is_accepted() {
        assert_eq!(
            DnsName::parse("example.com.").unwrap(),
            DnsName::parse("example.com").unwrap()
        );
    }

    #[test]
    fn case_insensitive_equality() {
        assert_eq!(
            DnsName::parse("FOO.bar").unwrap(),
            DnsName::parse("foo.BAR").unwrap()
        );
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(DnsName::parse("a..b"), Err(NameError::EmptyLabel));
        assert!(matches!(
            DnsName::parse(&format!("{}.com", "x".repeat(64))),
            Err(NameError::LabelTooLong(_))
        ));
        assert_eq!(
            DnsName::parse("sp ace.com"),
            Err(NameError::BadCharacter(' '))
        );
        let long = vec!["abcdefgh"; 32].join(".");
        assert_eq!(DnsName::parse(&long), Err(NameError::NameTooLong));
    }

    #[test]
    fn subdomain_relation() {
        let parent = DnsName::parse("example.com").unwrap();
        let child = DnsName::parse("a.b.example.com").unwrap();
        assert!(child.is_subdomain_of(&parent));
        assert!(parent.is_subdomain_of(&parent));
        assert!(!parent.is_subdomain_of(&child));
        assert!(child.is_subdomain_of(&DnsName::root()));
    }

    #[test]
    fn parent_chain_terminates() {
        let mut n = DnsName::parse("a.b.c").unwrap();
        let mut hops = 0;
        while let Some(p) = n.parent() {
            n = p;
            hops += 1;
        }
        assert_eq!(hops, 3);
        assert!(n.is_root());
    }

    #[test]
    fn child_builds_subdomain() {
        let base = DnsName::parse("example.com").unwrap();
        let c = base.child("probe1").unwrap();
        assert_eq!(c.to_string(), "probe1.example.com");
        assert!(c.is_subdomain_of(&base));
    }

    #[test]
    fn wildcard_handling() {
        let n = DnsName::parse("foo.example.com").unwrap();
        let w = n.to_wildcard();
        assert_eq!(w.to_string(), "*.example.com");
        assert!(w.is_wildcard());
        assert!(!n.is_wildcard());
    }

    #[test]
    fn wire_len_counts_length_octets() {
        // "ab.cd" -> 1+2 + 1+2 + 1 = 7
        assert_eq!(DnsName::parse("ab.cd").unwrap().wire_len(), 7);
        assert_eq!(DnsName::root().wire_len(), 1);
    }
}
