//! # tft — Tunneling for Transparency, reproduced
//!
//! A full Rust reproduction of *"Tunneling for Transparency: A Large-Scale
//! Analysis of End-to-End Violations in the Internet"* (Chung, Choffnes,
//! Mislove — IMC 2016): the measurement methodology, the attribution
//! analyses, and — because the paper's substrate (the Luminati proxy
//! network and the 2016 Internet) is not rentable from a test suite — a
//! deterministic simulation of that substrate, calibrated to the paper's
//! published tables.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`netsim`] | discrete-event kernel: virtual time, scheduler, seeded RNG, fault injection |
//! | [`inetdb`] | prefix→AS→org→country registry (RouteViews + CAIDA equivalents) |
//! | [`dnswire`] | DNS wire format, zones, authoritative server with source-conditional answers |
//! | [`httpwire`] | HTTP/1.1 requests/responses, chunked coding, proxy request forms |
//! | [`certs`] | certificate model, chains, root stores, validation |
//! | [`middlebox`] | the violators: hijackers, injectors, transcoders, TLS MITM, monitors |
//! | [`proxynet`] | the Luminati-like proxy service and the world runtime |
//! | [`worldgen`] | calibrated world scenarios + planted ground truth |
//! | [`tft_core`] | the paper's contribution: experiments, analyses, reports, scoring |
//!
//! ## Quickstart
//!
//! ```
//! use tft::prelude::*;
//!
//! // Build a small calibrated world and run the DNS experiment.
//! let mut built = worldgen::build(&worldgen::paper_spec(0.002, 42));
//! let cfg = StudyConfig::scaled(0.002);
//! let data = tft_core::dns_exp::run(&mut built.world, &cfg);
//! let analysis = tft_core::analysis::dns::analyze(&data, &built.world, &cfg);
//! assert!(analysis.nodes > 100);
//! assert!(analysis.hijacked > 0, "the calibrated world plants hijackers");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use certs;
pub use dnswire;
pub use httpwire;
pub use inetdb;
pub use middlebox;
pub use netsim;
pub use proxynet;
pub use tft_core;
pub use worldgen;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use crate::tft_core::{
        self, render_annex, render_tables, run_study, run_study_with, score_report, ExecOptions,
        StudyConfig, StudyReport,
    };
    pub use crate::worldgen::{self, build, paper_spec, BuiltWorld, GroundTruth};
    pub use httpwire::Uri;
    pub use inetdb::CountryCode;
    pub use proxynet::{ProxyError, UsernameOptions, World};
}
