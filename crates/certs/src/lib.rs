//! # certs — certificate model and chain validation
//!
//! The TLS trust plane of the reproduction, at the granularity the paper
//! observes it (§6): presented certificate chains, issuer common names,
//! validity, hostname matching, and root-store anchoring. Record-layer
//! cryptography is substituted away — the paper's client performs a TLS
//! handshake only to *collect the certificates* and then terminates the
//! connection; it never exchanges application data under TLS.
//!
//! - [`cert`]: certificates, distinguished names, key identities,
//!   fingerprints;
//! - [`issue`]: CAs, leaf issuance, spoof generation, and the three
//!   deliberately invalid certificates of the experiment's *invalid sites*
//!   class;
//! - [`store`]: root stores, including the 187-root "OS X 10.11-like"
//!   store the paper validates against;
//! - [`verify`]: `openssl verify`-equivalent chain validation and the
//!   exact-match check for invalid sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cert;
pub mod issue;
pub mod store;
pub mod verify;

pub use cert::{Certificate, DistinguishedName, KeyId};
pub use issue::{expired_leaf, self_signed_leaf, wrong_name_leaf, CertAuthority};
pub use store::RootStore;
pub use verify::{exact_match, verify_chain, CertError};
