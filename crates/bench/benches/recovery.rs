//! Recovery bench: what crash-recoverability costs and what it buys.
//!
//! Two jobs in one binary:
//!
//! 1. **Regression gate** — the study rendered from a checkpoint restored
//!    at *every* stage boundary must digest identically to the
//!    uninterrupted run, at workers 1 and 8, and the serialized
//!    checkpoints themselves must be byte-identical across worker counts.
//!    A mismatch panics, the bench exits nonzero, and `scripts/check.sh`
//!    fails the recovery stage.
//! 2. **Trajectory** — per-boundary checkpoint serialization cost,
//!    parse+restore cost, and time-to-recover (restore, then finish the
//!    study) against time-to-recompute (rerun from scratch), written as
//!    `BENCH_recovery.json` and archived across PRs.
//!
//! The JSON report is written directly (not via `Harness::finish`) because
//! the per-boundary byte sizes and recover/recompute ratios live alongside
//! — not inside — the timing stats.

use std::hint::black_box;
use substrate::bench::Harness;
use substrate::hash::stable64;
use substrate::json::Json;
use tft_core::{
    render_annex, render_tables, ExecOptions, StudyCheckpoint, StudyConfig, StudyDriver, StudyStage,
};
use worldgen::{build, smoke_spec};

/// Master seed; the same study the recovery test sweep pins.
const SEED: u64 = 0x5E4E;

fn cfg() -> StudyConfig {
    StudyConfig {
        min_nodes_per_country: 5,
        min_nodes_per_dns_server: 3,
        ..StudyConfig::default()
    }
}

fn rendered(driver: StudyDriver) -> String {
    let config = cfg();
    let (report, _world) = driver.into_parts();
    let mut out = render_tables(&report);
    out.push('\n');
    out.push_str(&render_annex(&report, &config));
    out
}

/// Uninterrupted run at `workers`, collecting the serialized checkpoint at
/// every stage boundary along the way plus the final rendered digest.
fn reference(workers: usize) -> (u64, Vec<(StudyStage, String)>) {
    let spec = smoke_spec(SEED);
    let mut driver = StudyDriver::new(
        build(&spec).world,
        cfg(),
        &ExecOptions::with_workers(workers),
    );
    let mut checkpoints = Vec::new();
    while !driver.is_done() {
        let cp = driver
            .checkpoint(&spec)
            .expect("every pre-Done boundary is checkpointable");
        checkpoints.push((cp.next, cp.to_canonical_json()));
        driver.step();
    }
    (stable64(rendered(driver).as_bytes()), checkpoints)
}

/// Restore from serialized bytes and run the study to completion.
fn recover(json: &str, workers: usize) -> String {
    let cp = StudyCheckpoint::from_json_str(json).expect("archived checkpoint parses");
    let mut driver = StudyDriver::restore(&cp, &ExecOptions::with_workers(workers))
        .expect("archived checkpoint restores");
    driver.run_to_completion();
    rendered(driver)
}

/// Run the whole study from scratch.
fn recompute(workers: usize) -> String {
    let spec = smoke_spec(SEED);
    let mut driver = StudyDriver::new(
        build(&spec).world,
        cfg(),
        &ExecOptions::with_workers(workers),
    );
    driver.run_to_completion();
    rendered(driver)
}

fn main() {
    let mut h = Harness::new("recovery");
    let worker_counts = [1usize, 8];

    // ---- Gate 1: reference digests and checkpoint bytes are
    // worker-independent.
    let (digest, checkpoints) = reference(worker_counts[0]);
    for &w in &worker_counts[1..] {
        let (d, cps) = reference(w);
        assert_eq!(
            d, digest,
            "reference digest diverged at workers={w}: {d:016x} != {digest:016x}"
        );
        assert_eq!(
            cps, checkpoints,
            "serialized checkpoints diverged at workers={w}"
        );
    }

    // ---- Gate 2: recovery from every boundary renders the reference
    // bytes at every worker count.
    for (stage, json) in &checkpoints {
        for &w in &worker_counts {
            let got = stable64(recover(json, w).as_bytes());
            assert_eq!(
                got, digest,
                "recovery from {stage:?} diverged at workers={w}: \
                 {got:016x} != {digest:016x}"
            );
        }
    }
    eprintln!(
        "[recovery] digest {digest:016x} identical across {} boundaries at workers {worker_counts:?}",
        checkpoints.len()
    );

    // ---- Trajectory. Timing runs on one worker so the numbers measure
    // the recovery machinery, not thread scheduling noise.
    let recompute_stats = h
        .bench("recompute/full", || black_box(recompute(1).len()))
        .clone();

    let mut rows = Vec::new();
    for (stage, json) in &checkpoints {
        let name = format!("{stage:?}").to_lowercase();

        // Serialization cost: snapshot the driver parked at this boundary.
        let spec = smoke_spec(SEED);
        let mut driver = StudyDriver::new(build(&spec).world, cfg(), &ExecOptions::with_workers(1));
        while !driver.is_done() && driver.next_stage() != *stage {
            driver.step();
        }
        let checkpoint_stats = h
            .bench(&format!("checkpoint/{name}"), || {
                let cp = driver.checkpoint(&spec).expect("boundary checkpoints");
                black_box(cp.to_canonical_json().len())
            })
            .clone();

        // Parse + rebuild cost: bytes back to a runnable driver.
        let restore_stats = h
            .bench(&format!("restore/{name}"), || {
                let cp = StudyCheckpoint::from_json_str(json).expect("checkpoint parses");
                let d = StudyDriver::restore(&cp, &ExecOptions::with_workers(1))
                    .expect("checkpoint restores");
                black_box(d.next_stage())
            })
            .clone();

        // Time-to-recover: restore and finish the remaining stages.
        let recover_stats = h
            .bench(&format!("recover/from_{name}"), || {
                black_box(recover(json, 1).len())
            })
            .clone();

        rows.push(Json::Obj(vec![
            ("stage".into(), Json::str(name)),
            ("checkpoint_bytes".into(), Json::uint(json.len() as u64)),
            (
                "checkpoint_ns".into(),
                Json::float(checkpoint_stats.median_ns),
            ),
            ("restore_ns".into(), Json::float(restore_stats.median_ns)),
            ("recover_ns".into(), Json::float(recover_stats.median_ns)),
            (
                "recover_vs_recompute".into(),
                Json::float(recover_stats.median_ns / recompute_stats.median_ns),
            ),
        ]));
    }

    println!("{}", h.render());
    let doc = Json::Obj(vec![
        ("label".into(), Json::str("recovery")),
        ("quick".into(), Json::Bool(h.is_quick())),
        ("seed".into(), Json::str(format!("{SEED:016x}"))),
        ("report_digest".into(), Json::str(format!("{digest:016x}"))),
        ("digest_identical_at_workers_1_8".into(), Json::Bool(true)),
        ("boundaries".into(), Json::uint(checkpoints.len() as u64)),
        (
            "recompute_full_ns".into(),
            Json::float(recompute_stats.median_ns),
        ),
        ("stages".into(), Json::Arr(rows)),
    ]);
    if let Some(path) = std::env::var_os("BENCH_JSON") {
        let rendered = doc.render_pretty() + "\n";
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("[recovery] could not write {}: {e}", path.to_string_lossy());
            std::process::exit(1);
        }
        eprintln!("[recovery] wrote {}", path.to_string_lossy());
    }
}
