//! Transparent image transcoding (§5.2, Table 7).
//!
//! Mobile carriers compress images in flight to save bandwidth. The paper's
//! analysis keys on two observables: (a) the response is still a JPEG but
//! smaller, and (b) the *compression ratio is consistent across exit nodes
//! of the same AS* (single-ratio ASes) or clusters around a small set of
//! ratios (multi-ratio ASes, marked "M" in Table 7).

use netsim::rng::RngExt;
use netsim::SimRng;

/// JPEG SOI marker — the transcoder preserves the format, only the payload
/// shrinks.
pub const JPEG_MAGIC: [u8; 3] = [0xFF, 0xD8, 0xFF];

/// A transparent image transcoder with one or more operating points.
#[derive(Debug, Clone)]
pub struct ImageTranscoder {
    /// Size ratios the transcoder compresses to (e.g. `[0.53]`, or
    /// `[0.34, 0.61]` for a multi-ratio deployment).
    ratios: Vec<f64>,
}

impl ImageTranscoder {
    /// A transcoder with the given output/input size ratios.
    ///
    /// # Panics
    /// Panics if `ratios` is empty or any ratio is outside `(0, 1)`.
    pub fn new(ratios: Vec<f64>) -> Self {
        assert!(!ratios.is_empty(), "transcoder needs at least one ratio");
        assert!(
            ratios.iter().all(|r| *r > 0.0 && *r < 1.0),
            "compression ratios must be in (0,1)"
        );
        ImageTranscoder { ratios }
    }

    /// A single-operating-point transcoder.
    pub fn single(ratio: f64) -> Self {
        Self::new(vec![ratio])
    }

    /// The configured operating points.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// True if this deployment uses multiple ratios (Table 7's "M" rows).
    pub fn is_multi_ratio(&self) -> bool {
        self.ratios.len() > 1
    }

    /// Transcode a JPEG body: picks one operating point (per request, which
    /// for a single-ratio deployment is deterministic) and produces a
    /// smaller JPEG. Non-JPEG inputs pass through untouched — the paper saw
    /// compression only on images.
    pub fn transcode(&self, image: &[u8], rng: &mut SimRng) -> Vec<u8> {
        if image.len() < JPEG_MAGIC.len() || image[..3] != JPEG_MAGIC {
            return image.to_vec();
        }
        let ratio = if self.ratios.len() == 1 {
            self.ratios[0]
        } else {
            self.ratios[rng.random_range(0..self.ratios.len())]
        };
        let new_len = ((image.len() as f64) * ratio).round().max(4.0) as usize;
        let mut out = Vec::with_capacity(new_len);
        out.extend_from_slice(&JPEG_MAGIC);
        // Re-encoded payload: derived from the original so different source
        // images still produce different outputs, but visibly "recompressed".
        out.extend(
            image
                .iter()
                .skip(3)
                .step_by((image.len() / new_len).max(1))
                .take(new_len - 3),
        );
        while out.len() < new_len {
            out.push(0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jpeg(len: usize) -> Vec<u8> {
        let mut v = vec![0xFF, 0xD8, 0xFF];
        v.extend((0..len - 3).map(|i| (i % 251) as u8));
        v
    }

    #[test]
    fn single_ratio_is_deterministic_and_correct() {
        let t = ImageTranscoder::single(0.53);
        let mut rng = SimRng::new(1);
        let img = jpeg(39 * 1024);
        let a = t.transcode(&img, &mut rng);
        let b = t.transcode(&img, &mut rng);
        assert_eq!(a.len(), b.len());
        let ratio = a.len() as f64 / img.len() as f64;
        assert!((ratio - 0.53).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn output_is_still_jpeg() {
        let t = ImageTranscoder::single(0.4);
        let mut rng = SimRng::new(2);
        let out = t.transcode(&jpeg(1000), &mut rng);
        assert_eq!(&out[..3], &JPEG_MAGIC);
        assert_ne!(out, jpeg(1000));
    }

    #[test]
    fn multi_ratio_produces_multiple_sizes() {
        let t = ImageTranscoder::new(vec![0.3, 0.6]);
        assert!(t.is_multi_ratio());
        let mut rng = SimRng::new(3);
        let img = jpeg(10_000);
        let sizes: std::collections::HashSet<usize> =
            (0..50).map(|_| t.transcode(&img, &mut rng).len()).collect();
        assert_eq!(sizes.len(), 2, "expected exactly two operating points");
    }

    #[test]
    fn non_jpeg_passes_through() {
        let t = ImageTranscoder::single(0.5);
        let mut rng = SimRng::new(4);
        let body = b"<html>not an image</html>".to_vec();
        assert_eq!(t.transcode(&body, &mut rng), body);
    }

    #[test]
    fn different_images_compress_differently() {
        let t = ImageTranscoder::single(0.5);
        let mut rng = SimRng::new(5);
        let a = t.transcode(&jpeg(1000), &mut rng);
        let mut other = jpeg(1000);
        for b in other.iter_mut().skip(3) {
            *b = b.wrapping_add(13);
        }
        let b = t.transcode(&other, &mut rng);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn rejects_silly_ratios() {
        ImageTranscoder::single(1.5);
    }
}
