//! Authoritative zone data and lookup semantics.
//!
//! Implements the distinction the paper's methodology hinges on: **NXDOMAIN**
//! (the name does not exist at all) versus **NODATA** (the name exists but
//! has no records of the queried type), plus wildcard synthesis and
//! single-level CNAME chasing.

use crate::name::DnsName;
use crate::wire::{QType, RData, Record};
use std::collections::BTreeMap;

/// Result of an authoritative lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneAnswer {
    /// Records found (possibly via CNAME; the chain is included in order).
    Records(Vec<Record>),
    /// The name exists but has no records of the queried type.
    NoData,
    /// The name does not exist.
    NxDomain,
    /// The query name is not within this zone's authority.
    NotAuthoritative,
}

/// An authoritative zone: an apex name, an SOA, and owner-name → records.
#[derive(Debug, Clone)]
pub struct Zone {
    apex: DnsName,
    soa: Record,
    records: BTreeMap<DnsName, Vec<Record>>,
}

impl Zone {
    /// Create a zone with a default SOA.
    ///
    /// # Panics
    /// Panics if `apex` is the root (we never act as root servers).
    pub fn new(apex: DnsName) -> Self {
        assert!(!apex.is_root(), "zone apex must not be the root");
        let soa = Record {
            name: apex.clone(),
            ttl: 3600,
            rdata: RData::Soa {
                // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "literal label on an operator-validated apex, not wire input; only an over-long apex could fail")
                mname: apex.child("ns1").expect("valid child label"),
                // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "literal label on an operator-validated apex, not wire input; only an over-long apex could fail")
                rname: apex.child("hostmaster").expect("valid child label"),
                serial: 1,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        };
        Zone {
            apex,
            soa,
            records: BTreeMap::new(),
        }
    }

    /// The zone apex.
    pub fn apex(&self) -> &DnsName {
        &self.apex
    }

    /// The SOA record (returned in the authority section of negative
    /// responses).
    pub fn soa(&self) -> &Record {
        &self.soa
    }

    /// Add a record.
    ///
    /// # Panics
    /// Panics if the owner name is outside the zone.
    pub fn add(&mut self, record: Record) -> &mut Self {
        assert!(
            record.name.is_subdomain_of(&self.apex),
            "record {} outside zone {}",
            record.name,
            self.apex
        );
        self.records
            .entry(record.name.clone())
            .or_default()
            .push(record);
        self
    }

    /// Convenience: add an A record.
    pub fn add_a(&mut self, name: DnsName, ip: std::net::Ipv4Addr) -> &mut Self {
        self.add(Record {
            name,
            ttl: 300,
            rdata: RData::A(ip),
        })
    }

    /// Remove all records at `name`. Returns how many were removed.
    pub fn remove(&mut self, name: &DnsName) -> usize {
        self.records.remove(name).map(|v| v.len()).unwrap_or(0)
    }

    /// True if any record exists at `name` or below it (empty non-terminals
    /// exist and must answer NODATA, not NXDOMAIN).
    fn name_exists(&self, name: &DnsName) -> bool {
        if self.records.contains_key(name) {
            return true;
        }
        // An "empty non-terminal": some stored owner is a subdomain of name.
        self.records.keys().any(|owner| owner.is_subdomain_of(name))
    }

    /// Authoritative lookup with wildcard synthesis and one level of CNAME
    /// chasing (enough for our zones; real servers chase further).
    pub fn lookup(&self, qname: &DnsName, qtype: QType) -> ZoneAnswer {
        if !qname.is_subdomain_of(&self.apex) {
            return ZoneAnswer::NotAuthoritative;
        }
        if let Some(rrs) = self.records.get(qname) {
            let matching: Vec<Record> = rrs
                .iter()
                .filter(|r| qtype == QType::Any || r.rdata.rtype() == qtype)
                .cloned()
                .collect();
            if !matching.is_empty() {
                return ZoneAnswer::Records(matching);
            }
            // CNAME at the name answers any type (except explicit CNAME
            // queries, handled above by the filter).
            if let Some(cname_rr) = rrs.iter().find(|r| matches!(r.rdata, RData::Cname(_))) {
                let mut chain = vec![cname_rr.clone()];
                if let RData::Cname(target) = &cname_rr.rdata {
                    if let ZoneAnswer::Records(mut rest) = self.lookup_no_cname(target, qtype) {
                        chain.append(&mut rest);
                    }
                }
                return ZoneAnswer::Records(chain);
            }
            return ZoneAnswer::NoData;
        }
        if self.name_exists(qname) {
            return ZoneAnswer::NoData;
        }
        // Wildcard synthesis: *.parent matches a nonexistent child.
        if !qname.is_root() {
            let wildcard = qname.to_wildcard();
            if let Some(rrs) = self.records.get(&wildcard) {
                let matching: Vec<Record> = rrs
                    .iter()
                    .filter(|r| qtype == QType::Any || r.rdata.rtype() == qtype)
                    .map(|r| Record {
                        name: qname.clone(),
                        ttl: r.ttl,
                        rdata: r.rdata.clone(),
                    })
                    .collect();
                if !matching.is_empty() {
                    return ZoneAnswer::Records(matching);
                }
                return ZoneAnswer::NoData;
            }
        }
        ZoneAnswer::NxDomain
    }

    /// Lookup without CNAME chasing (used to terminate the chase).
    fn lookup_no_cname(&self, qname: &DnsName, qtype: QType) -> ZoneAnswer {
        if let Some(rrs) = self.records.get(qname) {
            let matching: Vec<Record> = rrs
                .iter()
                .filter(|r| qtype == QType::Any || r.rdata.rtype() == qtype)
                .cloned()
                .collect();
            if !matching.is_empty() {
                return ZoneAnswer::Records(matching);
            }
            return ZoneAnswer::NoData;
        }
        ZoneAnswer::NxDomain
    }

    /// Number of owner names with records.
    pub fn owner_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    fn zone() -> Zone {
        let mut z = Zone::new(name("tft-probe.example"));
        z.add_a(name("www.tft-probe.example"), Ipv4Addr::new(192, 0, 2, 80));
        z.add(Record {
            name: name("alias.tft-probe.example"),
            ttl: 60,
            rdata: RData::Cname(name("www.tft-probe.example")),
        });
        z.add(Record {
            name: name("txt.tft-probe.example"),
            ttl: 60,
            rdata: RData::Txt(vec!["v=probe".into()]),
        });
        z.add_a(
            name("*.wild.tft-probe.example"),
            Ipv4Addr::new(192, 0, 2, 99),
        );
        z.add_a(
            name("deep.under.empty.tft-probe.example"),
            Ipv4Addr::new(192, 0, 2, 5),
        );
        z
    }

    #[test]
    fn positive_answer() {
        let z = zone();
        match z.lookup(&name("www.tft-probe.example"), QType::A) {
            ZoneAnswer::Records(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert_eq!(rrs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 80)));
            }
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn nxdomain_for_missing_name() {
        let z = zone();
        assert_eq!(
            z.lookup(&name("nope.tft-probe.example"), QType::A),
            ZoneAnswer::NxDomain
        );
    }

    #[test]
    fn nodata_for_wrong_type() {
        let z = zone();
        assert_eq!(
            z.lookup(&name("txt.tft-probe.example"), QType::A),
            ZoneAnswer::NoData
        );
    }

    #[test]
    fn empty_non_terminal_is_nodata_not_nxdomain() {
        let z = zone();
        // "under.empty..." has no records itself but has a child.
        assert_eq!(
            z.lookup(&name("under.empty.tft-probe.example"), QType::A),
            ZoneAnswer::NoData
        );
    }

    #[test]
    fn cname_is_chased_one_level() {
        let z = zone();
        match z.lookup(&name("alias.tft-probe.example"), QType::A) {
            ZoneAnswer::Records(rrs) => {
                assert_eq!(rrs.len(), 2);
                assert!(matches!(rrs[0].rdata, RData::Cname(_)));
                assert!(matches!(rrs[1].rdata, RData::A(_)));
            }
            other => panic!("expected CNAME chain, got {other:?}"),
        }
    }

    #[test]
    fn explicit_cname_query_returns_cname_only() {
        let z = zone();
        match z.lookup(&name("alias.tft-probe.example"), QType::Cname) {
            ZoneAnswer::Records(rrs) => {
                assert_eq!(rrs.len(), 1);
                assert!(matches!(rrs[0].rdata, RData::Cname(_)));
            }
            other => panic!("expected CNAME only, got {other:?}"),
        }
    }

    #[test]
    fn wildcard_synthesizes_query_name() {
        let z = zone();
        match z.lookup(&name("anything.wild.tft-probe.example"), QType::A) {
            ZoneAnswer::Records(rrs) => {
                assert_eq!(rrs[0].name, name("anything.wild.tft-probe.example"));
            }
            other => panic!("expected wildcard match, got {other:?}"),
        }
    }

    #[test]
    fn out_of_zone_is_not_authoritative() {
        let z = zone();
        assert_eq!(
            z.lookup(&name("www.other.example"), QType::A),
            ZoneAnswer::NotAuthoritative
        );
    }

    #[test]
    fn remove_makes_name_nxdomain() {
        let mut z = zone();
        assert_eq!(z.remove(&name("www.tft-probe.example")), 1);
        assert_eq!(
            z.lookup(&name("www.tft-probe.example"), QType::A),
            ZoneAnswer::NxDomain
        );
    }

    #[test]
    fn any_query_returns_all_types() {
        let mut z = zone();
        z.add(Record {
            name: name("www.tft-probe.example"),
            ttl: 60,
            rdata: RData::Txt(vec!["extra".into()]),
        });
        match z.lookup(&name("www.tft-probe.example"), QType::Any) {
            ZoneAnswer::Records(rrs) => assert_eq!(rrs.len(), 2),
            other => panic!("expected two records, got {other:?}"),
        }
    }
}
