//! A lightweight, *total* item/expression parser on top of the lexer.
//!
//! The call-graph passes need more structure than a flat token stream:
//! which function a token belongs to, what that function calls, and where
//! closure boundaries lie. This module parses the token stream of one file
//! into exactly that — and nothing more. It is **not** a Rust parser:
//!
//! - It is total. Any token stream — including the output of the lexer on
//!   arbitrary bytes — produces an [`Ast`] without panicking. Constructs it
//!   does not understand are skipped as opaque token runs; a truncated or
//!   unbalanced file degrades to fewer recognized functions, never to an
//!   error.
//! - Spans are token-index ranges into the file's token stream (and via
//!   the tokens, byte ranges into the text), so every recognized node can
//!   be mapped back to `file:line:col` and re-sliced from the source. The
//!   `substrate::qc` properties in `tests/prop.rs` pin totality and span
//!   well-formedness.
//!
//! Recognized structure: `fn` items (free and inside `impl`/`mod` blocks,
//! with the enclosing impl's type name), call expressions (`path::to::f(`),
//! method calls (`.m(`, turbofish tolerated), macro invocations (`name!`),
//! and closures (`|args| body`, with their parameter names and body span).
//! Everything else — types, generics, expressions between the interesting
//! nodes — is deliberately opaque.

use crate::engine::SourceFile;
use crate::lexer::TokKind;

/// Marker comment declaring the next `fn` a perf-critical root for
/// `hot-path-alloc` reachability.
pub const HOT_ROOT_MARKER: &str = "tft-lint: hot-root";
/// Marker comment declaring the next `fn` an untrusted-input entry point
/// for `unchecked-arith-reachable` reachability.
pub const WIRE_ENTRY_MARKER: &str = "tft-lint: wire-entry";

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments as written (`["pool", "par_map"]`, `["f"]`). For
    /// method calls this is the single method name.
    pub path: Vec<String>,
    /// True for `.name(…)` method-call syntax.
    pub method: bool,
    /// Token index of the name token (the last path segment).
    pub name_tok: usize,
    /// Token-index range of the argument list `( … )`, open paren
    /// inclusive, close paren inclusive-end (exclusive bound).
    pub args: (usize, usize),
    /// 1-based position of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
}

/// One macro invocation (`name!(…)`, `name![…]`, `name!{…}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroUse {
    /// Macro name (without the `!`).
    pub name: String,
    /// Token index of the name.
    pub name_tok: usize,
    /// 1-based position.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One closure literal inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Closure {
    /// Parameter names (identifiers only; pattern internals are flattened).
    pub params: Vec<String>,
    /// Token-index range of the closure body (block or expression),
    /// start inclusive, end exclusive.
    pub body: (usize, usize),
    /// 1-based position of the opening `|`.
    pub line: u32,
    /// 1-based column of the opening `|`.
    pub col: u32,
}

/// One recognized `fn` item.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type name, if any (`impl Foo { fn m … }` and
    /// `impl Trait for Foo { … }` both record `Foo`).
    pub impl_ty: Option<String>,
    /// Token-index range of the whole item (from `fn` through the closing
    /// brace or terminating `;`), end exclusive.
    pub span: (usize, usize),
    /// Token-index range of the body block `{ … }`, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// Call sites in the body, in token order.
    pub calls: Vec<CallSite>,
    /// Macro invocations in the body, in token order.
    pub macros: Vec<MacroUse>,
    /// Closures in the body, in token order (nested closures appear as
    /// separate entries; their spans nest).
    pub closures: Vec<Closure>,
    /// Inside a `#[cfg(test)] mod` block.
    pub in_test_mod: bool,
    /// Annotated `// tft-lint: hot-root`.
    pub hot_root: bool,
    /// Annotated `// tft-lint: wire-entry`.
    pub wire_entry: bool,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
}

/// The parse result for one file: the recognized functions, in source
/// order. Anything between them is opaque by construction.
#[derive(Debug, Clone, Default)]
pub struct Ast {
    /// Recognized `fn` items (free functions and impl methods, including
    /// nested fns — the list is flat, spans tell the nesting).
    pub fns: Vec<FnNode>,
}

/// Keywords that look like call heads but are control flow.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "else", "in", "move", "break",
];

/// Tokens that may directly precede a binary (value-context) `|`; anything
/// else starting with `|` opens a closure. A bitwise/logical `or` can only
/// follow a value: an identifier, a literal, or a closing bracket. Also
/// used by `unchecked-arith-reachable` to separate binary `+`/`*` from
/// their prefix readings.
pub(crate) fn value_ending(kind: TokKind, text: &str) -> bool {
    match kind {
        TokKind::Ident => !NON_CALL_KEYWORDS.contains(&text) && text != "let" && text != "as",
        TokKind::Int
        | TokKind::Float
        | TokKind::Str
        | TokKind::RawStr
        | TokKind::ByteStr
        | TokKind::Char
        | TokKind::Byte => true,
        TokKind::Punct => matches!(text, ")" | "]" | "?"),
        _ => false,
    }
}

/// Parse one file's token stream. Total on any input.
pub fn parse(file: &SourceFile) -> Ast {
    let code: Vec<usize> = file
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let test_ranges = file.test_mod_ranges();
    let (hot_marks, wire_marks) = annotation_marks(file);
    let mut p = Parser {
        file,
        code: &code,
        test_ranges: &test_ranges,
        hot_marks: &hot_marks,
        wire_marks: &wire_marks,
        out: Ast::default(),
    };
    p.parse_items(0, code.len(), None);
    p.out
}

/// Byte offsets of `hot-root` / `wire-entry` marker comments. Each marker
/// attaches to the next `fn` keyword that follows it in the token stream.
fn annotation_marks(file: &SourceFile) -> (Vec<usize>, Vec<usize>) {
    let mut hot = Vec::new();
    let mut wire = Vec::new();
    for t in &file.tokens {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            let text = t.text(&file.text);
            if text.contains(HOT_ROOT_MARKER) {
                hot.push(t.start);
            }
            if text.contains(WIRE_ENTRY_MARKER) {
                wire.push(t.start);
            }
        }
    }
    (hot, wire)
}

struct Parser<'a> {
    file: &'a SourceFile,
    /// Indices of code (non-comment) tokens.
    code: &'a [usize],
    test_ranges: &'a [(usize, usize)],
    hot_marks: &'a [usize],
    wire_marks: &'a [usize],
    out: Ast,
}

impl<'a> Parser<'a> {
    /// Text of code token `w` (position in `self.code`).
    fn text(&self, w: usize) -> &str {
        self.code
            .get(w)
            .map(|&i| self.file.tok_text(i))
            .unwrap_or("")
    }

    /// Kind of code token `w`.
    fn kind(&self, w: usize) -> Option<TokKind> {
        self.code.get(w).map(|&i| self.file.tokens[i].kind)
    }

    /// Walk `[from, to)` (code-token positions) recognizing items; `impl_ty`
    /// is the enclosing impl's type name.
    fn parse_items(&mut self, from: usize, to: usize, impl_ty: Option<&str>) {
        let mut w = from;
        while w < to {
            match self.text(w) {
                "fn" if self.kind(w + 1) == Some(TokKind::Ident) => {
                    w = self.parse_fn(w, to, impl_ty);
                }
                "impl" => {
                    w = self.parse_impl(w, to);
                }
                "mod" | "trait" => {
                    // Recurse into the block body (trait default methods
                    // and mod items are regular fns for our purposes).
                    match self.find_block(w + 1, to) {
                        Some((open_w, close_w)) => {
                            self.parse_items(open_w + 1, close_w, impl_ty);
                            w = close_w + 1;
                        }
                        None => w += 1,
                    }
                }
                _ => w += 1,
            }
        }
    }

    /// Find the next top-level `{` at or after `w` (before `to`), skipping
    /// nothing — returns the positions of the `{` and its matching `}`.
    /// Gives up at a `;` (item ended without a block) or when unbalanced.
    fn find_block(&self, mut w: usize, to: usize) -> Option<(usize, usize)> {
        while w < to {
            match self.text(w) {
                "{" => {
                    let close = self.matching_close(w, to)?;
                    return Some((w, close));
                }
                ";" => return None,
                _ => w += 1,
            }
        }
        None
    }

    /// Position of the `}` matching the `{` at code position `open`
    /// (bounded by `to`); `None` when unbalanced.
    fn matching_close(&self, open: usize, to: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut w = open;
        while w < to {
            match self.text(w) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(w);
                    }
                }
                _ => {}
            }
            w += 1;
        }
        None
    }

    /// Parse a `fn` item at code position `w`; returns the position one
    /// past the item.
    fn parse_fn(&mut self, w: usize, to: usize, impl_ty: Option<&str>) -> usize {
        let fn_idx = self.code[w];
        let fn_tok = self.file.tokens[fn_idx];
        let name = self.text(w + 1).to_string();
        let body = self.find_block(w + 2, to);
        let span_end = match body {
            Some((_, close_w)) => close_w + 1,
            None => {
                // Declaration (`trait` method without default, extern):
                // runs to the `;` or gives up one token in.
                let mut v = w + 2;
                while v < to && self.text(v) != ";" && self.text(v) != "{" {
                    v += 1;
                }
                v.min(to) + 1
            }
        };
        let fn_start_byte = fn_tok.start;
        let hot_root = self.is_marked(self.hot_marks, fn_start_byte);
        let wire_entry = self.is_marked(self.wire_marks, fn_start_byte);
        let mut node = FnNode {
            name,
            impl_ty: impl_ty.map(str::to_string),
            span: (
                fn_idx,
                self.code
                    .get(span_end.saturating_sub(1))
                    .map(|&i| i + 1)
                    .unwrap_or(self.file.tokens.len()),
            ),
            body: body.map(|(o, c)| (self.code[o], self.code[c] + 1)),
            calls: Vec::new(),
            macros: Vec::new(),
            closures: Vec::new(),
            in_test_mod: self
                .test_ranges
                .iter()
                .any(|&(s, e)| fn_idx >= s && fn_idx < e),
            hot_root,
            wire_entry,
            line: fn_tok.line,
            col: fn_tok.col,
        };
        if let Some((open_w, close_w)) = body {
            self.scan_body(open_w + 1, close_w, &mut node);
            // Nested fns (and fns inside closures) are items too.
            self.parse_items(open_w + 1, close_w, impl_ty);
        }
        self.out.fns.push(node);
        span_end
    }

    /// Does a marker comment attach to the item starting at `fn_start_byte`?
    /// A marker attaches to the next `fn` keyword after it; i.e. the marker
    /// lies before the fn and no other `fn` keyword sits between them.
    fn is_marked(&self, marks: &[usize], fn_start_byte: usize) -> bool {
        marks.iter().any(|&m| {
            m < fn_start_byte
                && !self.code.iter().any(|&i| {
                    let t = &self.file.tokens[i];
                    t.start > m && t.start < fn_start_byte && t.text(&self.file.text) == "fn"
                })
        })
    }

    /// Parse an `impl` block at `w`; returns one past it.
    fn parse_impl(&mut self, w: usize, to: usize) -> usize {
        let Some((open_w, close_w)) = self.find_block(w + 1, to) else {
            return w + 1;
        };
        // Type name: the last path-segment identifier before the `{`,
        // preferring what follows `for` (`impl Trait for Type`). Generic
        // argument lists are skipped by taking idents not inside `<…>`.
        let mut ty: Option<String> = None;
        let mut after_for = false;
        let mut angle = 0i64;
        for v in (w + 1)..open_w {
            match self.text(v) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "for" if angle == 0 => {
                    after_for = true;
                    ty = None;
                }
                "where" if angle == 0 => break,
                // Before `for`: keep the last ident (trait path). After
                // `for`: keep the first (the implementing type).
                t if angle == 0
                    && self.kind(v) == Some(TokKind::Ident)
                    && (ty.is_none() || !after_for) =>
                {
                    ty = Some(t.to_string());
                }
                _ => {}
            }
        }
        self.parse_items(open_w + 1, close_w, ty.as_deref());
        close_w + 1
    }

    /// Scan a fn body `[from, to)` for calls, method calls, macros, and
    /// closures. Nested blocks are flat-scanned (nesting does not matter
    /// for call-graph purposes); nested `fn` items are excluded — their
    /// bodies belong to the nested node, parsed separately.
    fn scan_body(&mut self, from: usize, to: usize, node: &mut FnNode) {
        // Pre-compute nested-fn body ranges to exclude.
        let mut excluded: Vec<(usize, usize)> = Vec::new();
        {
            let mut v = from;
            while v < to {
                if self.text(v) == "fn" && self.kind(v + 1) == Some(TokKind::Ident) {
                    if let Some((_, close_w)) = self.find_block(v + 2, to) {
                        excluded.push((v, close_w + 1));
                        v = close_w + 1;
                        continue;
                    }
                }
                v += 1;
            }
        }
        let skip = |v: usize| excluded.iter().any(|&(s, e)| v >= s && v < e);

        let mut w = from;
        while w < to {
            if skip(w) {
                w += 1;
                continue;
            }
            let text = self.text(w);
            let kind = self.kind(w);
            if kind == Some(TokKind::Ident) && !NON_CALL_KEYWORDS.contains(&text) {
                // Macro invocation?
                if self.text(w + 1) == "!" && matches!(self.text(w + 2), "(" | "[" | "{") {
                    let idx = self.code[w];
                    let t = self.file.tokens[idx];
                    node.macros.push(MacroUse {
                        name: text.to_string(),
                        name_tok: idx,
                        line: t.line,
                        col: t.col,
                    });
                    w += 2;
                    continue;
                }
                // Call with a leading path: walk back over `seg ::` pairs.
                if self.text(w + 1) == "(" {
                    let mut segs = vec![text.to_string()];
                    let mut v = w;
                    while v >= 2
                        && self.text(v - 1) == ":"
                        && self.text(v - 2) == ":"
                        && v >= 3
                        && self.kind(v - 3) == Some(TokKind::Ident)
                    {
                        segs.push(self.text(v - 3).to_string());
                        v -= 3;
                    }
                    segs.reverse();
                    // `.name(` is a method call, not a plain call.
                    let is_method = segs.len() == 1 && v >= 1 && self.text(v - 1) == ".";
                    let close = self
                        .matching_paren(w + 1, to)
                        .unwrap_or(to.saturating_sub(1));
                    let idx = self.code[w];
                    let t = self.file.tokens[idx];
                    node.calls.push(CallSite {
                        path: segs,
                        method: is_method,
                        name_tok: idx,
                        args: (
                            self.code[w + 1],
                            self.code
                                .get(close)
                                .map(|&i| i + 1)
                                .unwrap_or(self.file.tokens.len()),
                        ),
                        line: t.line,
                        col: t.col,
                    });
                    w += 2; // continue inside the args (nested calls count)
                    continue;
                }
                // Method call with turbofish: `.name::<T>(…)`.
                if w >= 1
                    && self.text(w - 1) == "."
                    && self.text(w + 1) == ":"
                    && self.text(w + 2) == ":"
                    && self.text(w + 3) == "<"
                {
                    if let Some(after_angle) = self.matching_angle(w + 3, to) {
                        if self.text(after_angle) == "(" {
                            let close = self
                                .matching_paren(after_angle, to)
                                .unwrap_or(to.saturating_sub(1));
                            let idx = self.code[w];
                            let t = self.file.tokens[idx];
                            node.calls.push(CallSite {
                                path: vec![text.to_string()],
                                method: true,
                                name_tok: idx,
                                args: (
                                    self.code[after_angle],
                                    self.code
                                        .get(close)
                                        .map(|&i| i + 1)
                                        .unwrap_or(self.file.tokens.len()),
                                ),
                                line: t.line,
                                col: t.col,
                            });
                            w = after_angle + 1;
                            continue;
                        }
                    }
                }
                w += 1;
                continue;
            }
            if text == "|" {
                // Closure iff the previous code token cannot end a value.
                let prev_is_value = w
                    .checked_sub(1)
                    .filter(|&p| p >= from)
                    .map(|p| {
                        self.kind(p)
                            .map(|k| value_ending(k, self.text(p)))
                            .unwrap_or(false)
                    })
                    .unwrap_or(false);
                if !prev_is_value {
                    w = self.parse_closure(w, to, node);
                    continue;
                }
            }
            w += 1;
        }
    }

    /// Position one past the `>` matching `<` at `open` (for turbofish).
    fn matching_angle(&self, open: usize, to: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut w = open;
        while w < to {
            match self.text(w) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(w + 1);
                    }
                }
                "(" | "{" | ";" => return None, // not a turbofish after all
                _ => {}
            }
            w += 1;
        }
        None
    }

    /// Position of the `)` matching `(` at code position `open`.
    fn matching_paren(&self, open: usize, to: usize) -> Option<usize> {
        let mut depth = 0i64;
        let mut w = open;
        while w < to {
            match self.text(w) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(w);
                    }
                }
                _ => {}
            }
            w += 1;
        }
        None
    }

    /// Parse a closure starting at the `|` at code position `w`. Records
    /// the closure and returns the position one past its parameter list
    /// (the body is scanned by the enclosing loop as ordinary tokens; the
    /// recorded span covers it for containment queries).
    fn parse_closure(&mut self, w: usize, to: usize, node: &mut FnNode) -> usize {
        let open_idx = self.code[w];
        let open_tok = self.file.tokens[open_idx];
        // Parameters: pattern idents up to the closing `|`. Tuple/struct
        // patterns (`|(k, plan, mut w)|`) flatten — every bound ident
        // counts; a `:` at bracket depth 0 switches into type position
        // until the next top-level `,` so type names are not collected.
        let mut params = Vec::new();
        let mut v = w + 1;
        let mut depth = 0i64;
        let mut in_type = false;
        while v < to {
            let t = self.text(v);
            match t {
                "|" if depth == 0 => break,
                "(" | "[" | "<" | "{" => depth += 1,
                ")" | "]" | ">" | "}" => depth -= 1,
                ":" if depth == 0 => in_type = true,
                "," if depth == 0 => in_type = false,
                _ => {
                    if !in_type
                        && self.kind(v) == Some(TokKind::Ident)
                        && !matches!(t, "mut" | "ref" | "move" | "_")
                    {
                        params.push(t.to_string());
                    }
                }
            }
            v += 1;
        }
        if v >= to {
            // Unterminated parameter list: opaque, not a closure.
            return w + 1;
        }
        // Body: a block `{…}`, or an expression running to the first
        // `,`/`)`/`}`/`;` at depth 0.
        let body_start = v + 1;
        let body_end_w = if self.text(body_start) == "{" {
            self.matching_close(body_start, to)
                .map(|c| c + 1)
                .unwrap_or(to)
        } else {
            let mut u = body_start;
            let mut d = 0i64;
            while u < to {
                match self.text(u) {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" if d > 0 => d -= 1,
                    ")" | "]" | "}" | "," | ";" => break,
                    _ => {}
                }
                u += 1;
            }
            u
        };
        let body_span = (
            self.code
                .get(body_start)
                .copied()
                .unwrap_or(self.file.tokens.len()),
            self.code
                .get(body_end_w.saturating_sub(1))
                .map(|&i| i + 1)
                .unwrap_or(self.file.tokens.len()),
        );
        node.closures.push(Closure {
            params,
            body: body_span,
            line: open_tok.line,
            col: open_tok.col,
        });
        v + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ast(src: &str) -> Ast {
        parse(&SourceFile::rust("crates/x/src/a.rs", "x", src))
    }

    #[test]
    fn free_fn_with_calls() {
        let a = ast("fn top() { helper(1); other::deeper(2); obj.method(3); }");
        assert_eq!(a.fns.len(), 1);
        let f = &a.fns[0];
        assert_eq!(f.name, "top");
        assert_eq!(f.impl_ty, None);
        let paths: Vec<Vec<String>> = f.calls.iter().map(|c| c.path.clone()).collect();
        assert_eq!(
            paths,
            vec![
                vec!["helper".to_string()],
                vec!["other".to_string(), "deeper".to_string()],
                vec!["method".to_string()],
            ]
        );
        assert!(f.calls[2].method);
        assert!(!f.calls[0].method);
    }

    #[test]
    fn impl_methods_record_the_type() {
        let a = ast("impl Widget { fn new() -> Widget { Widget } fn go(&self) { self.new2(); } }");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].impl_ty.as_deref(), Some("Widget"));
        assert_eq!(a.fns[1].name, "go");
    }

    #[test]
    fn trait_impl_records_the_self_type() {
        let a = ast("impl Display for Badge { fn fmt(&self) {} }");
        assert_eq!(a.fns[0].impl_ty.as_deref(), Some("Badge"));
    }

    #[test]
    fn macros_are_recorded() {
        let a = ast(r#"fn f() { let s = format!("x{}", 1); vec![1, 2]; }"#);
        let names: Vec<&str> = a.fns[0].macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["format", "vec"]);
    }

    #[test]
    fn closures_capture_params_and_span() {
        let a = ast("fn f() { run(|x, y| x + y); go(move |q| { q.work() }); }");
        let f = &a.fns[0];
        assert_eq!(f.closures.len(), 2);
        assert_eq!(f.closures[0].params, vec!["x", "y"]);
        assert_eq!(f.closures[1].params, vec!["q"]);
        // The method call inside the second closure's body is inside its span.
        let c = &f.closures[1];
        let work = f
            .calls
            .iter()
            .find(|cs| cs.path == ["work"])
            .expect("work recorded");
        assert!(work.name_tok >= c.body.0 && work.name_tok < c.body.1);
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let a = ast("fn f(a: u8, b: u8) -> u8 { a | b }");
        assert!(a.fns[0].closures.is_empty());
    }

    #[test]
    fn hot_root_annotation_attaches_to_next_fn() {
        let a = ast(
            "// tft-lint: hot-root\nfn probe_loop() {}\nfn bystander() {}\n// tft-lint: wire-entry\nfn decode() {}",
        );
        assert!(a.fns[0].hot_root);
        assert!(!a.fns[0].wire_entry);
        assert!(!a.fns[1].hot_root);
        assert!(a.fns[2].wire_entry);
    }

    #[test]
    fn test_mod_fns_are_marked() {
        let a = ast("fn real() {}\n#[cfg(test)]\nmod tests { fn t() {} }");
        assert!(!a.fns[0].in_test_mod);
        let t = a.fns.iter().find(|f| f.name == "t").expect("parsed");
        assert!(t.in_test_mod);
    }

    #[test]
    fn degrades_on_garbage_without_panicking() {
        for src in [
            "fn",
            "fn {",
            "fn f(",
            "impl {}{}{}",
            "fn f() { ( [ { |",
            "|||||",
            "fn f() { a.b::<(); }",
            "}}}}}",
        ] {
            let _ = ast(src);
        }
    }

    #[test]
    fn turbofish_method_call_is_recorded() {
        let a = ast("fn f(v: Vec<u8>) { v.iter().collect::<Vec<_>>(); }");
        assert!(a.fns[0]
            .calls
            .iter()
            .any(|c| c.method && c.path == ["collect"]));
    }

    #[test]
    fn nested_fns_get_their_own_nodes() {
        let a = ast("fn outer() { fn inner() { leaf(); } inner(); }");
        assert_eq!(a.fns.len(), 2);
        let outer = a.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = a.fns.iter().find(|f| f.name == "inner").expect("inner");
        // leaf() belongs to inner, not outer; inner() belongs to outer.
        assert!(inner.calls.iter().any(|c| c.path == ["leaf"]));
        assert!(!outer.calls.iter().any(|c| c.path == ["leaf"]));
        assert!(outer.calls.iter().any(|c| c.path == ["inner"]));
    }
}
