//! The negative control the real study could never run: a violator-free
//! Internet. Every detector must report **nothing** — any finding here is a
//! false positive manufactured by the methodology itself.

use tft::prelude::*;
use tft::tft_core::obs::DnsOutcome;
use tft::worldgen::clean_spec;

struct Run {
    report: StudyReport,
    smtp: tft::tft_core::analysis::smtp::SmtpAnalysis,
}

fn run() -> &'static Run {
    use std::sync::OnceLock;
    static RUN: OnceLock<Run> = OnceLock::new();
    RUN.get_or_init(|| {
        let scale = 0.004;
        let mut built = build(&clean_spec(scale, 0xC1EA));
        let cfg = StudyConfig::scaled(scale);
        let report = run_study(&mut built.world, &cfg);
        let smtp_data = tft::tft_core::smtp_exp::run(&mut built.world, &cfg);
        let smtp = tft::tft_core::analysis::smtp::analyze(&smtp_data, &built.world, &cfg);
        Run { report, smtp }
    })
}

#[test]
fn clean_world_measures_plenty_of_nodes() {
    let r = run();
    assert!(r.report.dns.nodes > 1_500, "{}", r.report.dns.nodes);
    assert!(r.report.https.nodes > 800, "{}", r.report.https.nodes);
}

#[test]
fn no_dns_hijacks_are_fabricated() {
    let r = run();
    assert_eq!(r.report.dns.hijacked, 0);
    assert!(r
        .report
        .dns_data
        .observations
        .iter()
        .all(|o| matches!(o.outcome, DnsOutcome::NotHijacked)));
    assert!(r.report.dns.isp_rows.is_empty());
    assert!(r.report.dns.public_services.is_empty());
    assert_eq!(r.report.dns.attribution.total(), 0);
}

#[test]
fn no_http_modifications_are_fabricated() {
    let r = run();
    assert_eq!(r.report.http.html_modified, 0);
    assert_eq!(r.report.http.image_modified, 0);
    assert_eq!(r.report.http.js.nodes, 0);
    assert_eq!(r.report.http.css.nodes, 0);
    assert!(r.report.http.signatures.is_empty());
    assert!(r.report.http.image_rows.is_empty());
}

#[test]
fn no_cert_replacements_are_fabricated() {
    let r = run();
    assert_eq!(r.report.https.replaced_nodes, 0);
    assert!(r.report.https.issuers.is_empty());
    // No node ever escalated to the 33-site scan.
    assert!(r
        .report
        .https_data
        .observations
        .iter()
        .all(|o| !o.escalated));
}

#[test]
fn no_monitoring_is_fabricated() {
    let r = run();
    assert_eq!(r.report.monitor.monitored_nodes, 0);
    assert!(r.report.monitor.entities.is_empty());
    assert_eq!(r.report.monitor.unexpected_sources, 0);
}

#[test]
fn no_smtp_stripping_is_fabricated() {
    let r = run();
    assert_eq!(r.smtp.starttls_missing, 0);
    assert!(r.smtp.stripping_ases.is_empty());
}
