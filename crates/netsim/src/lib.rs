//! # netsim — deterministic discrete-event simulation kernel
//!
//! The substrate every other crate in this workspace runs on. It provides:
//!
//! - [`time`]: virtual time ([`SimTime`], [`SimDuration`]) — wall-clock time
//!   never enters the simulation;
//! - [`sched`]: a deterministic event scheduler with stable tie-breaking;
//! - [`rng`]: splittable seeded randomness ([`SimRng`]) — one master `u64`
//!   seed reproduces an entire measurement campaign;
//! - [`latency`]: per-hop latency models for proxied request paths;
//! - [`fault`]: drop/corrupt/truncate/stall/delay fault injection (the
//!   smoltcp idiom, extended for chaos campaigns);
//! - [`campaign`]: scriptable fault campaigns — time-windowed regional
//!   outages, per-ISP/per-node profiles, flapping links;
//! - [`trace`]: structured event traces, rendered as the paper's
//!   request-timeline figures;
//! - [`stats`]: empirical CDFs and friends for the analysis layer.
//!
//! ## Why a simulator
//!
//! The paper's substrate is the live Luminati proxy network; access to it is
//! gated (commercial service, real Internet, five days of wall-clock time).
//! This kernel lets the whole ecosystem — proxy service, resolvers,
//! middleboxes, monitors — run as one deterministic program, so the paper's
//! *measurement and inference methodology* can be reproduced and scored
//! against planted ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod fault;
pub mod latency;
pub mod rate;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod trace;

pub use campaign::{FaultCampaign, FaultProfile, FaultRule, FaultScope, FaultTarget};
pub use fault::{FaultConfigError, FaultInjector, FaultVerdict};
pub use latency::{Latency, PathLatencies};
pub use rate::TokenBucket;
pub use rng::SimRng;
pub use sched::{EventId, Fired, Scheduler};
pub use stats::Cdf;
pub use time::{SimDuration, SimTime};
pub use trace::{TraceCategory, TraceEvent, TraceLog};
