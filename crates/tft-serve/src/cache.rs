//! Content-addressed study caching.
//!
//! A study is a pure function of its [`worldgen::WorldSpec`] (DESIGN.md §5),
//! so its results can be addressed by content: the [`StudyKey`] hashes the
//! spec's **canonical** JSON rendering ([`substrate::Json::render_canonical`])
//! with the workspace's stable hash, so two submissions that differ only in
//! JSON spelling — key order, number formatting, whitespace — map to the
//! same address, while any semantic difference changes it.
//!
//! The cache is two-tier:
//!
//! - **tier 1 — worlds**: the pristine built [`proxynet::World`] for a key.
//!   Building is cheap relative to executing, but skipping it still matters
//!   when a report was evicted and the study must re-run.
//! - **tier 2 — reports**: the fully rendered response body for a completed
//!   study. A hit here serves without executing anything.
//!
//! Both tiers evict in **insertion order** (FIFO) at a fixed capacity. That
//! is deliberately not recency-based: eviction order then depends only on
//! the sequence of inserts — itself a pure function of the request trace —
//! never on read patterns, so cache state replays byte-identically.

use proxynet::World;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use substrate::json::ToJson;
use substrate::stable64;
use worldgen::WorldSpec;

/// The content address of a study: `(spec_hash, seed, scale)`.
///
/// `seed` and `scale` are already part of the hashed spec, but they are the
/// two knobs users sweep, so the key carries them explicitly — the study id
/// exposes them for humans, and a hash collision between two sweeps would
/// still need identical `(seed, scale)` to collide fully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StudyKey {
    /// Stable hash of the spec's canonical JSON rendering.
    pub spec_hash: u64,
    /// The spec's master seed.
    pub seed: u64,
    /// The spec's scale, as raw bits so the key stays `Eq`/`Ord`.
    pub scale_bits: u64,
}

impl StudyKey {
    /// Address `spec`. Two specs get the same key iff their canonical JSON
    /// renderings are identical (modulo hash collisions).
    pub fn for_spec(spec: &WorldSpec) -> StudyKey {
        let canonical = spec.to_json().render_canonical();
        StudyKey {
            spec_hash: stable64(canonical.as_bytes()),
            seed: spec.seed,
            scale_bits: spec.scale.to_bits(),
        }
    }

    /// The URL-safe study id: three fixed-width hex words.
    pub fn study_id(&self) -> String {
        format!(
            "{:016x}-{:016x}-{:016x}",
            self.spec_hash, self.seed, self.scale_bits
        )
    }

    /// Parse a [`study_id`](StudyKey::study_id) back into a key. Strict:
    /// exactly three 16-digit lowercase hex words.
    pub fn parse_id(id: &str) -> Option<StudyKey> {
        let mut words = id.split('-');
        let mut next = || {
            let w = words.next()?;
            if w.len() != 16
                || !w
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
            {
                return None;
            }
            u64::from_str_radix(w, 16).ok()
        };
        let key = StudyKey {
            spec_hash: next()?,
            seed: next()?,
            scale_bits: next()?,
        };
        if words.next().is_some() {
            return None;
        }
        Some(key)
    }
}

/// Counters for one cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
}

impl TierStats {
    /// `hits / (hits + misses)`, or 0 for an untouched tier.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity map evicting in insertion order.
#[derive(Debug)]
struct FifoMap<V> {
    capacity: usize,
    map: BTreeMap<StudyKey, V>,
    order: VecDeque<StudyKey>,
}

impl<V> FifoMap<V> {
    fn new(capacity: usize) -> FifoMap<V> {
        assert!(capacity > 0, "cache capacity must be positive");
        FifoMap {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, key: &StudyKey) -> Option<&V> {
        self.map.get(key)
    }

    fn get_mut(&mut self, key: &StudyKey) -> Option<&mut V> {
        self.map.get_mut(key)
    }

    /// Drop `key` outright (integrity failure, not capacity): the entry and
    /// its eviction slot both go.
    fn remove(&mut self, key: &StudyKey) -> bool {
        if self.map.remove(key).is_none() {
            return false;
        }
        self.order.retain(|k| k != key);
        true
    }

    /// Insert, returning the evicted key if the tier was full. Re-inserting
    /// an existing key replaces the value but keeps its eviction position.
    fn insert(&mut self, key: StudyKey, value: V) -> Option<StudyKey> {
        if self.map.insert(key, value).is_some() {
            return None;
        }
        self.order.push_back(key);
        if self.order.len() > self.capacity {
            // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "internal invariant, not input-driven: len > capacity >= 1 was checked on the line above, so the deque is non-empty")
            let oldest = self.order.pop_front().expect("len > capacity > 0");
            self.map.remove(&oldest);
            return Some(oldest);
        }
        None
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A cached rendered report plus the content digest pinned at insert time.
/// Every read re-hashes the body against the digest — a flipped bit
/// anywhere in the cached bytes turns the entry into a miss instead of a
/// silently-wrong `200`.
struct SealedReport {
    body: Vec<u8>,
    digest: u64,
}

/// The two-tier study cache. See the module docs for the design.
pub struct StudyCache {
    worlds: FifoMap<World>,
    reports: FifoMap<SealedReport>,
    world_stats: TierStats,
    report_stats: TierStats,
    integrity_failures: u64,
}

impl StudyCache {
    /// A cache holding at most `world_capacity` pristine worlds and
    /// `report_capacity` rendered reports.
    ///
    /// # Panics
    /// Panics if either capacity is zero.
    pub fn new(world_capacity: usize, report_capacity: usize) -> StudyCache {
        StudyCache {
            worlds: FifoMap::new(world_capacity),
            reports: FifoMap::new(report_capacity),
            world_stats: TierStats::default(),
            report_stats: TierStats::default(),
            integrity_failures: 0,
        }
    }

    /// Verify `key`'s sealed digest; on mismatch expel the entry and count
    /// an integrity failure. Returns whether a *valid* entry remains.
    fn expel_if_corrupt(&mut self, key: &StudyKey) -> bool {
        match self.reports.get(key) {
            None => false,
            Some(sealed) if stable64(&sealed.body) == sealed.digest => true,
            Some(_) => {
                self.reports.remove(key);
                self.integrity_failures += 1;
                false
            }
        }
    }

    /// Tier-2 lookup: the rendered body of a completed study. The body is
    /// re-hashed against the digest sealed at insert; a corrupted entry is
    /// expelled and reported as a miss — it is never returned.
    pub fn report(&mut self, key: &StudyKey) -> Option<&Vec<u8>> {
        let valid = self.expel_if_corrupt(key);
        if valid {
            self.report_stats.hits += 1;
        } else {
            self.report_stats.misses += 1;
        }
        if valid {
            self.reports.get(key).map(|sealed| &sealed.body)
        } else {
            None
        }
    }

    /// Tier-2 lookup without touching the hit/miss counters (for re-reads
    /// of a body already accounted for). Integrity is still verified —
    /// corrupt entries are expelled, counted, and reported as absent.
    pub fn peek_report(&mut self, key: &StudyKey) -> Option<&Vec<u8>> {
        if !self.expel_if_corrupt(key) {
            return None;
        }
        self.reports.get(key).map(|sealed| &sealed.body)
    }

    /// Test/chaos seam: flip one byte of `key`'s cached body *without*
    /// updating its sealed digest, simulating storage corruption. Returns
    /// false if the key has no entry or an empty body.
    pub fn corrupt_report(&mut self, key: &StudyKey) -> bool {
        match self.reports.get_mut(key).and_then(|s| s.body.first_mut()) {
            Some(byte) => {
                *byte ^= 0x01;
                true
            }
            None => false,
        }
    }

    /// Cached report bodies that failed digest verification and were
    /// expelled (each counted once, at detection).
    pub fn integrity_failures(&self) -> u64 {
        self.integrity_failures
    }

    /// Tier-1 lookup: a clone of the pristine world, ready to execute.
    pub fn world(&mut self, key: &StudyKey) -> Option<World> {
        let hit = self.worlds.get(key).cloned();
        if hit.is_some() {
            self.world_stats.hits += 1;
        } else {
            self.world_stats.misses += 1;
        }
        hit
    }

    /// Store a completed study's rendered body, sealing its content digest
    /// for verification on every later read.
    pub fn insert_report(&mut self, key: StudyKey, body: Vec<u8>) {
        let digest = stable64(&body);
        if self
            .reports
            .insert(key, SealedReport { body, digest })
            .is_some()
        {
            self.report_stats.evictions += 1;
        }
    }

    /// Store a pristine (never-executed) world.
    pub fn insert_world(&mut self, key: StudyKey, world: World) {
        if self.worlds.insert(key, world).is_some() {
            self.world_stats.evictions += 1;
        }
    }

    /// Tier-1 counters.
    pub fn world_stats(&self) -> TierStats {
        self.world_stats
    }

    /// Tier-2 counters.
    pub fn report_stats(&self) -> TierStats {
        self.report_stats
    }

    /// Entries currently resident, `(worlds, reports)`.
    pub fn len(&self) -> (usize, usize) {
        (self.worlds.len(), self.reports.len())
    }

    /// True if both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> StudyKey {
        StudyKey {
            spec_hash: n,
            seed: n ^ 0xAB,
            scale_bits: 1.0f64.to_bits(),
        }
    }

    #[test]
    fn study_id_roundtrips() {
        let k = StudyKey {
            spec_hash: 0x0123_4567_89ab_cdef,
            seed: u64::MAX,
            scale_bits: 0.25f64.to_bits(),
        };
        let id = k.study_id();
        assert_eq!(id.len(), 16 * 3 + 2);
        assert_eq!(StudyKey::parse_id(&id), Some(k));
    }

    #[test]
    fn malformed_ids_are_rejected() {
        for bad in [
            "",
            "xyz",
            "0123456789abcdef",                                      // one word
            "0123456789abcdef-0123456789abcdef",                     // two words
            "0123456789abcdef-0123456789abcdef-0123456789abcde",     // short word
            "0123456789abcdef-0123456789abcdef-0123456789abcdef-00", // four words
            "0123456789ABCDEF-0123456789abcdef-0123456789abcdef",    // uppercase
            "0123456789abcdeg-0123456789abcdef-0123456789abcdef",    // non-hex
        ] {
            assert_eq!(StudyKey::parse_id(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn key_is_spelling_invariant_but_content_sensitive() {
        // Same spec → same key, regardless of which equal WorldSpec value
        // produced it; a one-field change (the seed) changes the key.
        let a = worldgen::smoke_spec(7);
        let b = worldgen::smoke_spec(7);
        let mut c = worldgen::smoke_spec(7);
        c.seed = 8;
        assert_eq!(StudyKey::for_spec(&a), StudyKey::for_spec(&b));
        assert_ne!(StudyKey::for_spec(&a), StudyKey::for_spec(&c));
    }

    #[test]
    fn report_hit_miss_counting() {
        let mut cache = StudyCache::new(4, 4);
        assert!(cache.report(&key(1)).is_none());
        cache.insert_report(key(1), b"body".to_vec());
        assert_eq!(cache.report(&key(1)), Some(&b"body".to_vec()));
        assert_eq!(
            cache.report_stats(),
            TierStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn eviction_is_in_insertion_order_at_fixed_capacity() {
        let mut cache = StudyCache::new(4, 2);
        cache.insert_report(key(1), vec![1]);
        cache.insert_report(key(2), vec![2]);
        // A read of key(1) must NOT refresh it: eviction order is insertion
        // order, not recency.
        assert!(cache.report(&key(1)).is_some());
        cache.insert_report(key(3), vec![3]);
        assert!(
            cache.peek_report(&key(1)).is_none(),
            "oldest insert evicted"
        );
        assert!(cache.peek_report(&key(2)).is_some());
        assert!(cache.peek_report(&key(3)).is_some());
        assert_eq!(cache.report_stats().evictions, 1);
        assert_eq!(cache.len(), (0, 2));
    }

    #[test]
    fn reinsert_keeps_eviction_position() {
        let mut cache = StudyCache::new(4, 2);
        cache.insert_report(key(1), vec![1]);
        cache.insert_report(key(2), vec![2]);
        cache.insert_report(key(1), vec![10]); // replace, not re-age
        cache.insert_report(key(3), vec![3]);
        assert!(
            cache.peek_report(&key(1)).is_none(),
            "key(1) still oldest despite reinsert"
        );
        assert_eq!(cache.peek_report(&key(2)), Some(&vec![2]));
    }

    #[test]
    fn corrupted_report_is_never_served_and_counts_once() {
        let mut cache = StudyCache::new(2, 2);
        cache.insert_report(key(1), b"rendered report".to_vec());
        assert!(cache.corrupt_report(&key(1)), "seam flips a byte");
        // The corrupted body is expelled, not returned — on counted and
        // uncounted paths alike.
        assert_eq!(cache.report(&key(1)), None);
        assert_eq!(cache.peek_report(&key(1)), None);
        assert_eq!(cache.integrity_failures(), 1, "detected exactly once");
        assert_eq!(cache.report_stats().hits, 0);
        // Reinsertion heals: the fresh body verifies again.
        cache.insert_report(key(1), b"rendered report".to_vec());
        assert_eq!(cache.report(&key(1)), Some(&b"rendered report".to_vec()));
        // Expulsion freed the eviction slot too: two more inserts fit
        // without evicting the healed entry's neighbour.
        cache.insert_report(key(2), vec![2]);
        assert!(cache.peek_report(&key(1)).is_some());
        assert!(cache.peek_report(&key(2)).is_some());
    }

    #[test]
    fn tiers_are_independent() {
        let mut cache = StudyCache::new(1, 2);
        let world = worldgen::build(&worldgen::smoke_spec(3)).world;
        cache.insert_world(key(1), world.clone());
        cache.insert_world(key(2), world);
        assert!(cache.world(&key(1)).is_none(), "tier-1 capacity 1 evicted");
        assert!(cache.world(&key(2)).is_some());
        // Tier 2 untouched by tier-1 churn.
        assert_eq!(cache.report_stats(), TierStats::default());
        assert_eq!(cache.world_stats().evictions, 1);
    }

    #[test]
    fn different_specs_never_collide_on_the_happy_path() {
        // Negative test: distinct specs (different seeds, scales, sites)
        // must map to distinct keys and distinct cache entries.
        let mut cache = StudyCache::new(8, 8);
        let mut keys = Vec::new();
        for seed in 0..4u64 {
            let spec = worldgen::smoke_spec(seed);
            let k = StudyKey::for_spec(&spec);
            cache.insert_report(k, k.study_id().into_bytes());
            keys.push(k);
        }
        let mut scaled = worldgen::smoke_spec(0);
        scaled.scale = 0.5;
        keys.push(StudyKey::for_spec(&scaled));
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "distinct specs collided");
            }
        }
        // Every cached body still reads back as its own key's id.
        for k in &keys[..4] {
            assert_eq!(cache.peek_report(k), Some(&k.study_id().into_bytes()));
        }
    }
}
