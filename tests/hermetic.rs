//! Guard: the workspace must stay hermetic — every dependency in every
//! `Cargo.toml` is a path dependency (directly or via `workspace = true`),
//! never a registry or git dependency. The build must succeed with zero
//! network access.
//!
//! The rule itself lives in `tft-lint`'s `hermetic-manifests` pass (which
//! `scripts/check.sh` also runs); this test is a thin wrapper so `cargo
//! test` enforces it too, with exactly one implementation of the audit.

use std::path::Path;

#[test]
fn every_dependency_is_a_path_dependency() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let violations =
        tft_lint::passes::check_workspace_manifests(root).expect("workspace is readable");
    assert!(
        violations.is_empty(),
        "non-hermetic dependency declarations (must be path-only):\n{}",
        violations
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn no_proptest_regression_artifacts() {
    // proptest is gone; its regression files would be dead weight that
    // suggests the old framework is still in use.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut found = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "proptest-regressions")
                || p.to_string_lossy().ends_with(".proptest-regressions")
            {
                found.push(p);
            }
        }
    }
    assert!(found.is_empty(), "stale proptest artifacts: {found:?}");
}
