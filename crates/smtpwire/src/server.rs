//! A mail server model: banner, EHLO capabilities, STARTTLS acceptance.

use crate::command::Command;
use crate::reply::Reply;

/// A simple ESMTP server.
#[derive(Debug, Clone)]
pub struct MailServer {
    /// The server's hostname (appears in banner and EHLO greeting).
    pub host: String,
    /// Whether the server supports STARTTLS.
    pub supports_starttls: bool,
}

impl MailServer {
    /// A STARTTLS-capable server.
    pub fn new(host: &str) -> MailServer {
        MailServer {
            host: host.to_string(),
            supports_starttls: true,
        }
    }

    /// The 220 connection banner.
    pub fn banner(&self) -> Reply {
        Reply::new(220, &format!("{} ESMTP ready", self.host))
    }

    /// Handle one command.
    pub fn handle(&self, cmd: &Command) -> Reply {
        match cmd {
            Command::Ehlo(_) => {
                let mut lines = vec![
                    format!("{} greets you", self.host),
                    "PIPELINING".to_string(),
                    "8BITMIME".to_string(),
                ];
                if self.supports_starttls {
                    lines.push("STARTTLS".to_string());
                }
                Reply::multiline(250, lines)
            }
            Command::Helo(_) => Reply::new(250, &self.host),
            Command::StartTls => {
                if self.supports_starttls {
                    Reply::new(220, "Ready to start TLS")
                } else {
                    Reply::new(454, "TLS not available")
                }
            }
            Command::Noop => Reply::new(250, "OK"),
            Command::Quit => Reply::new(221, &format!("{} closing", self.host)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reply::Capabilities;

    #[test]
    fn ehlo_advertises_starttls() {
        let s = MailServer::new("mx1.us.example");
        let reply = s.handle(&Command::Ehlo("probe.example".into()));
        assert_eq!(reply.code, 250);
        assert!(Capabilities::from_ehlo(&reply).starttls);
    }

    #[test]
    fn starttls_accepted_when_supported() {
        let s = MailServer::new("mx1.us.example");
        assert_eq!(s.handle(&Command::StartTls).code, 220);
    }

    #[test]
    fn starttls_refused_when_unsupported() {
        let mut s = MailServer::new("legacy.example");
        s.supports_starttls = false;
        let ehlo = s.handle(&Command::Ehlo("probe.example".into()));
        assert!(!Capabilities::from_ehlo(&ehlo).starttls);
        assert_eq!(s.handle(&Command::StartTls).code, 454);
    }

    #[test]
    fn banner_names_host() {
        let s = MailServer::new("mx1.us.example");
        assert!(s.banner().to_text().contains("mx1.us.example"));
        assert_eq!(s.banner().code, 220);
    }

    #[test]
    fn quit_and_noop() {
        let s = MailServer::new("mx1.us.example");
        assert_eq!(s.handle(&Command::Quit).code, 221);
        assert_eq!(s.handle(&Command::Noop).code, 250);
    }
}
