//! DNS hijack survey: the full §4 pipeline — country table, hijacking ISP
//! resolvers, public resolver services, and content attribution for
//! Google-DNS users — printed as the paper's Tables 3–5.
//!
//! ```sh
//! cargo run --release --example dns_hijack_survey [scale]
//! ```

use tft::prelude::*;
use tft::tft_core::report::tables;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    println!("building calibrated world (scale {scale})…");
    let mut built = build(&paper_spec(scale, 0xD15));
    let cfg = StudyConfig::scaled(scale);

    println!("running the DNS experiment (sampling until saturation)…");
    let data = tft::tft_core::dns_exp::run(&mut built.world, &cfg);
    println!(
        "  {} sessions issued, {} nodes measured, {} filtered (same Google anycast), {} discarded",
        data.samples_issued,
        data.observations.len(),
        data.filtered_same_anycast,
        data.discarded
    );
    let analysis = tft::tft_core::analysis::dns::analyze(&data, &built.world, &cfg);

    print!("{}", tables::table3(&analysis));
    print!("{}", tables::table4(&analysis));
    print!("{}", tables::table5(&analysis));

    // Hijacking public resolver services (§4.3.2).
    println!("\nhijacking public resolver services:");
    for svc in &analysis.public_services {
        println!(
            "  {:<28} {} servers, {} nodes",
            svc.operator, svc.servers, svc.nodes
        );
    }

    // Score against the planted truth.
    println!("\nscoring detection against planted ground truth:");
    let mut tp = 0;
    let mut missed = 0;
    for obs in &data.observations {
        let node = built
            .world
            .node_ids()
            .find(|id| built.world.node(*id).zid == obs.zid)
            .expect("zid maps to node");
        let actually = built.truth.dns_hijacked.contains_key(&node);
        let detected = matches!(obs.outcome, tft::tft_core::obs::DnsOutcome::Hijacked { .. });
        match (detected, actually) {
            (true, true) => tp += 1,
            (false, true) => missed += 1,
            (true, false) => println!("  FALSE POSITIVE on {}", obs.zid),
            _ => {}
        }
    }
    println!("  {tp} true positives, {missed} missed, no false positives expected");
}
