//! Property tests on the violator models: every sample stays inside its
//! declared behavioural envelope.

use middlebox::monitor::{profiles, RefetchOffset};
use middlebox::{extract_urls, HtmlInjector, ImageTranscoder};
use netsim::SimRng;
use substrate::qc::{self, alphabet, Config, Gen};
use substrate::{qc_assert, qc_assert_eq};

/// Every profile's samples stay inside its documented envelope.
#[test]
fn refetch_models_respect_envelopes() {
    qc::check(
        "refetch envelopes",
        &Config::default(),
        &qc::any_u64(),
        |&seed| {
            let mut rng = SimRng::new(seed);
            for _ in 0..20 {
                for offs in [
                    profiles::trend_micro().sample(&mut rng),
                    profiles::talktalk().sample(&mut rng),
                    profiles::commtouch().sample(&mut rng),
                    profiles::anchorfree().sample(&mut rng),
                    profiles::bluecoat().sample(&mut rng),
                    profiles::tiscali().sample(&mut rng),
                ] {
                    qc_assert!(!offs.is_empty() && offs.len() <= 2);
                    for o in offs {
                        match o {
                            RefetchOffset::After(d) => {
                                qc_assert!(d.as_millis() >= 1);
                                qc_assert!(d.as_millis() <= 12_500_000);
                            }
                            RefetchOffset::Before(d) => {
                                qc_assert!(d.as_millis() <= 5_000, "prefetch lead {d}");
                            }
                        }
                    }
                }
            }
            qc::pass()
        },
    );
}

/// `<html><head>[a-z ]*</head><body>[a-z ]*</body></html>` documents.
fn html_bodies() -> Gen<String> {
    qc::tuple2(
        qc::string_of("abcdefghijklmnopqrstuvwxyz ", 0..41),
        qc::string_of("abcdefghijklmnopqrstuvwxyz ", 0..201),
    )
    .map(|(head, body)| format!("<html><head>{head}</head><body>{body}</body></html>"))
}

/// Injection preserves the original document: the modified body always
/// contains the original head and tail, plus the signature.
#[test]
fn injection_preserves_original() {
    qc::check(
        "injection preserves original",
        &Config::default(),
        &qc::tuple2(html_bodies(), qc::ints(0usize..4096)),
        |(body, payload)| {
            let inj = HtmlInjector::script("sig.example", *payload, 3);
            let out = inj.inject(body.as_bytes());
            let text = String::from_utf8_lossy(&out);
            qc_assert!(text.contains("sig.example"));
            // Everything before </body> in the original is still present.
            let head = body.split("</body>").next().unwrap();
            qc_assert!(text.contains(head));
            qc_assert!(text.ends_with("</body></html>"));
            qc_assert!(out.len() >= body.len() + payload);
            qc::pass()
        },
    );
}

/// Transcoded JPEGs shrink to the configured ratio, for any input size
/// above the minimum and any ratio.
#[test]
fn transcoder_hits_ratio() {
    qc::check(
        "transcoder hits ratio",
        &Config::default(),
        &qc::tuple3(
            qc::ints(64usize..100_000),
            qc::floats(0.1..0.9),
            qc::any_u64(),
        ),
        |(len, ratio, seed)| {
            let mut img = vec![0xFF, 0xD8, 0xFF];
            img.extend((0..*len).map(|i| (i % 251) as u8));
            let t = ImageTranscoder::single(*ratio);
            let mut rng = SimRng::new(*seed);
            let out = t.transcode(&img, &mut rng);
            let actual = out.len() as f64 / img.len() as f64;
            qc_assert!((actual - ratio).abs() < 0.02, "ratio {actual} vs {ratio}");
            qc_assert_eq!(&out[..3], &[0xFF, 0xD8, 0xFF]);
            qc::pass()
        },
    );
}

/// URL extraction finds every URL planted into arbitrary surrounding
/// text.
#[test]
fn extract_urls_finds_planted() {
    let planted_hosts = qc::vec_of(
        qc::string_of(alphabet::LOWER, 3..13).map(|h| h + ".example"),
        1..5,
    );
    qc::check(
        "extract_urls finds planted",
        &Config::default(),
        &qc::tuple2(
            planted_hosts,
            qc::string_of(
                "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ <>/",
                0..61,
            ),
        ),
        |(hosts, filler)| {
            let mut doc = String::new();
            for h in hosts {
                doc.push_str(filler);
                doc.push_str(&format!(" <a href=\"http://{h}/x\">l</a> "));
            }
            let urls = extract_urls(doc.as_bytes());
            for h in hosts {
                qc_assert!(
                    urls.iter().any(|u| u.contains(h.as_str())),
                    "missing {h} in {urls:?}"
                );
            }
            qc::pass()
        },
    );
}
