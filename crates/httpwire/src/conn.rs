//! Connection-level request handling: a byte stream carrying pipelined
//! HTTP/1.1 requests, consumed one complete message at a time.
//!
//! The in-simulation origin servers receive one request per exchange, but a
//! real deployment of these protocol crates needs keep-alive semantics;
//! `RequestStream` provides them and is exercised by the tests and fuzzed
//! for totality.

use crate::parse::ParseError;
use crate::request::Request;

/// An incremental reader of pipelined requests from an append-only buffer.
///
/// ```
/// use httpwire::{Request, RequestStream};
/// let mut stream = RequestStream::new();
/// stream.feed(&Request::origin_get("a.example", "/1").encode());
/// stream.feed(&Request::origin_get("a.example", "/2").encode());
/// let reqs = stream.drain_requests().unwrap();
/// assert_eq!(reqs.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct RequestStream {
    buf: Vec<u8>,
    consumed_total: usize,
}

impl RequestStream {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes received from the peer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Total bytes consumed as complete requests so far.
    pub fn consumed(&self) -> usize {
        self.consumed_total
    }

    /// Try to take the next complete request off the stream.
    ///
    /// * `Ok(Some(req))` — a complete request was parsed and consumed.
    /// * `Ok(None)` — more bytes are needed.
    /// * `Err(e)` — the stream is corrupt; the connection should be closed
    ///   (the buffer is left untouched for diagnostics).
    pub fn next_request(&mut self) -> Result<Option<Request>, ParseError> {
        if self.buf.is_empty() {
            return Ok(None);
        }
        match Request::parse(&self.buf) {
            Ok((req, used)) => {
                self.buf.drain(..used);
                self.consumed_total += used;
                Ok(Some(req))
            }
            Err(ParseError::Incomplete) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Drain every complete request currently buffered.
    pub fn drain_requests(&mut self) -> Result<Vec<Request>, ParseError> {
        let mut out = Vec::new();
        while let Some(req) = self.next_request()? {
            out.push(req);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Method;

    fn get(path: &str) -> Request {
        Request::origin_get("pipelined.example", path)
    }

    #[test]
    fn single_request_roundtrip() {
        let mut s = RequestStream::new();
        s.feed(&get("/a").encode());
        let req = s.next_request().unwrap().expect("complete");
        assert_eq!(req.target.path(), Some("/a"));
        assert_eq!(s.buffered(), 0);
        assert!(s.next_request().unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut s = RequestStream::new();
        let mut bytes = Vec::new();
        for p in ["/1", "/2", "/3"] {
            bytes.extend_from_slice(&get(p).encode());
        }
        s.feed(&bytes);
        let reqs = s.drain_requests().unwrap();
        let paths: Vec<_> = reqs.iter().filter_map(|r| r.target.path()).collect();
        assert_eq!(paths, vec!["/1", "/2", "/3"]);
    }

    #[test]
    fn partial_delivery_waits_for_more_bytes() {
        let mut s = RequestStream::new();
        let wire = get("/slow").encode();
        for chunk in wire.chunks(7) {
            assert!(s.next_request().unwrap().is_none() || s.buffered() == 0);
            s.feed(chunk);
        }
        let req = s.next_request().unwrap().expect("now complete");
        assert_eq!(req.target.path(), Some("/slow"));
    }

    #[test]
    fn body_boundaries_are_respected() {
        let mut a = get("/post");
        a.method = Method::Post;
        a.body = b"12345".to_vec();
        let b = get("/after");
        let mut s = RequestStream::new();
        s.feed(&a.encode());
        s.feed(&b.encode());
        let first = s.next_request().unwrap().unwrap();
        assert_eq!(first.body, b"12345");
        let second = s.next_request().unwrap().unwrap();
        assert_eq!(second.target.path(), Some("/after"));
    }

    #[test]
    fn corrupt_stream_errors_and_preserves_buffer() {
        let mut s = RequestStream::new();
        s.feed(b"NOT HTTP AT ALL\r\n\r\n");
        assert!(s.next_request().is_err());
        assert!(s.buffered() > 0, "buffer kept for diagnostics");
    }

    #[test]
    fn consumed_counter_tracks_bytes() {
        let mut s = RequestStream::new();
        let wire = get("/x").encode();
        s.feed(&wire);
        s.next_request().unwrap().unwrap();
        assert_eq!(s.consumed(), wire.len());
    }
}
