//! DNS hijacking analysis (§4.2–§4.4): country ratios, ISP-resolver
//! identification, public-resolver identification, and content-based
//! attribution for Google-DNS users.

use crate::config::StudyConfig;
use crate::obs::{DnsDataset, DnsOutcome};
use inetdb::{Asn, CountryCode};
use middlebox::{extract_urls, url_domain};
use proxynet::World;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryRow {
    /// Country code.
    pub country: CountryCode,
    /// Hijacked nodes.
    pub hijacked: usize,
    /// Measured nodes.
    pub total: usize,
}

impl CountryRow {
    /// Hijack ratio.
    pub fn ratio(&self) -> f64 {
        self.hijacked as f64 / self.total as f64
    }
}

/// One hijacking ISP aggregated over its resolvers (Table 4 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IspRow {
    /// Country of the ISP's registration.
    pub country: CountryCode,
    /// ISP (organization) name.
    pub isp: String,
    /// Hijacking resolver addresses.
    pub servers: usize,
    /// Exit nodes behind them.
    pub nodes: usize,
}

/// One hijacked-content domain (Table 5 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainRow {
    /// Domain appearing in hijack-page URLs.
    pub domain: String,
    /// Nodes that received content linking to it.
    pub nodes: usize,
    /// Distinct node ASes.
    pub ases: usize,
    /// Distinct node countries.
    pub countries: usize,
    /// Heuristic: spread across many ASes/countries ⇒ end-host software
    /// rather than an ISP (the shaded rows of Table 5).
    pub likely_endhost: bool,
}

/// A hijacking public resolver service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicServiceRow {
    /// Operator (from the address's BGP-prefix owner).
    pub operator: String,
    /// Hijacking server addresses.
    pub servers: usize,
    /// Nodes using them.
    pub nodes: usize,
}

/// An AS whose nodes overwhelmingly use Google DNS (footnote 9: the paper
/// found 91 such ASes, e.g. OPT Benin at 99.1%).
#[derive(Debug, Clone, PartialEq)]
pub struct GoogleDominantAs {
    /// The AS.
    pub asn: Asn,
    /// Operating organization.
    pub org: String,
    /// Nodes measured in the AS.
    pub nodes: usize,
    /// Share of them configured with Google DNS.
    pub google_share: f64,
}

/// A family of hijack pages sharing identical JavaScript across multiple
/// ISPs — evidence of a common vendor appliance (§4.3.1 found five ISPs
/// with "nearly identical JavaScript code").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedJsFamily {
    /// Stable hash of the normalized script.
    pub script_hash: u64,
    /// ISPs serving it, sorted.
    pub isps: Vec<String>,
    /// Hijacked nodes that received it.
    pub nodes: usize,
}

/// Attribution of hijacked nodes to their source class (§4.4).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attribution {
    /// Hijacked behind identified ISP resolvers.
    pub isp: usize,
    /// Hijacked behind identified public resolvers.
    pub public: usize,
    /// Hijacked some other way (path middleboxes, end-host software).
    pub other: usize,
}

impl Attribution {
    /// Total attributed nodes.
    pub fn total(&self) -> usize {
        self.isp + self.public + self.other
    }

    /// Shares `(isp, public, other)`.
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (
            self.isp as f64 / t,
            self.public as f64 / t,
            self.other as f64 / t,
        )
    }
}

/// Full DNS analysis output.
#[derive(Debug, Default)]
pub struct DnsAnalysis {
    /// Nodes measured.
    pub nodes: usize,
    /// Distinct resolver addresses observed.
    pub resolvers: usize,
    /// Nodes with hijacked NXDOMAIN.
    pub hijacked: usize,
    /// Distinct node ASes.
    pub ases: usize,
    /// Distinct node countries.
    pub countries: usize,
    /// Country table (≥ threshold), sorted by ratio descending.
    pub by_country: Vec<CountryRow>,
    /// ISP-provided resolvers identified.
    pub isp_resolvers_total: usize,
    /// …of which had enough nodes to analyze.
    pub isp_resolvers_qualified: usize,
    /// …of which hijack ≥ the share threshold.
    pub isp_resolvers_hijacking: usize,
    /// Hijacking ISPs aggregated (Table 4).
    pub isp_rows: Vec<IspRow>,
    /// Public resolvers identified (used from >2 countries).
    pub public_resolvers_total: usize,
    /// Hijacking public services (Table 5-adjacent, §4.3.2).
    pub public_services: Vec<PublicServiceRow>,
    /// Nodes using Google DNS.
    pub google_nodes: usize,
    /// …of which still received hijacked responses.
    pub google_hijacked: usize,
    /// Domains extracted from those nodes' hijack pages (Table 5).
    pub google_domains: Vec<DomainRow>,
    /// ASes whose nodes overwhelmingly use Google DNS (footnote 9).
    pub google_dominant_ases: Vec<GoogleDominantAs>,
    /// Hijack-page JavaScript families served by more than one ISP
    /// (vendor-appliance evidence, §4.3.1).
    pub shared_js_families: Vec<SharedJsFamily>,
    /// Source attribution (§4.4).
    pub attribution: Attribution,
}

/// Normalize a hijack page's inline JavaScript for cross-ISP comparison:
/// URLs and probe-specific names are replaced by placeholders so that two
/// deployments of the same vendor appliance hash identically while bespoke
/// implementations do not.
pub fn normalize_hijack_js(content: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(content);
    let start = text.find("<script")?;
    let body_start = text[start..].find('>')? + start + 1;
    let end = text[body_start..].find("</script>")? + body_start;
    let script = &text[body_start..end];
    let mut out = String::with_capacity(script.len());
    let mut rest = script;
    // Strip every quoted string (they carry the per-ISP redirect target and
    // the per-probe domain); keep the code skeleton.
    while let Some(q) = rest.find('\'') {
        out.push_str(&rest[..q]);
        out.push_str("'§'");
        let after = &rest[q + 1..];
        match after.find('\'') {
            Some(close) => rest = &after[close + 1..],
            None => {
                rest = "";
                break;
            }
        }
    }
    out.push_str(rest);
    Some(out)
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn in_google_anycast(ip: Ipv4Addr) -> bool {
    let o = ip.octets();
    o[0] == 74 && o[1] == 125
}

/// Run the analysis.
pub fn analyze(data: &DnsDataset, world: &World, cfg: &StudyConfig) -> DnsAnalysis {
    let reg = &world.registry;
    let mut out = DnsAnalysis {
        nodes: data.observations.len(),
        ..Default::default()
    };

    // ---- per-resolver grouping -----------------------------------------
    struct ResolverGroup {
        nodes: usize,
        hijacked: usize,
        node_orgs: BTreeSet<u32>,
        node_countries: BTreeSet<CountryCode>,
    }
    let mut groups: BTreeMap<Ipv4Addr, ResolverGroup> = BTreeMap::new();
    let mut node_ases: BTreeSet<Asn> = BTreeSet::new();
    let mut node_countries: BTreeSet<CountryCode> = BTreeSet::new();
    let mut country_counts: BTreeMap<CountryCode, (usize, usize)> = BTreeMap::new();

    for obs in &data.observations {
        let hijacked = matches!(obs.outcome, DnsOutcome::Hijacked { .. });
        if hijacked {
            out.hijacked += 1;
        }
        if let Some(asn) = reg.ip_to_asn(obs.node_ip) {
            node_ases.insert(asn);
        }
        let cc = reg.country_of_ip(obs.node_ip).unwrap_or(obs.country);
        node_countries.insert(cc);
        let entry = country_counts.entry(cc).or_insert((0, 0));
        entry.1 += 1;
        if hijacked {
            entry.0 += 1;
        }
        let g = groups.entry(obs.resolver_ip).or_insert(ResolverGroup {
            nodes: 0,
            hijacked: 0,
            node_orgs: BTreeSet::new(),
            node_countries: BTreeSet::new(),
        });
        g.nodes += 1;
        if hijacked {
            g.hijacked += 1;
        }
        if let Some(org) = reg.org_of_ip(obs.node_ip) {
            g.node_orgs.insert(org.id.0);
        }
        g.node_countries.insert(cc);
    }
    out.resolvers = groups.len();
    out.ases = node_ases.len();
    out.countries = node_countries.len();

    // ---- Table 3: countries ----------------------------------------------
    out.by_country = country_counts
        .into_iter()
        .filter(|(_, (_, total))| *total >= cfg.min_nodes_per_country)
        .map(|(country, (hijacked, total))| CountryRow {
            country,
            hijacked,
            total,
        })
        .collect();
    out.by_country
        .sort_by(|a, b| b.ratio().partial_cmp(&a.ratio()).expect("finite ratios"));

    // ---- resolver classification -------------------------------------------
    let mut hijacking_isp_servers: BTreeMap<u32, (String, CountryCode, usize, usize)> =
        BTreeMap::new();
    let mut hijacking_public: BTreeMap<u32, (String, usize, usize)> = BTreeMap::new();
    let mut isp_server_set: BTreeSet<Ipv4Addr> = BTreeSet::new();
    let mut public_server_set: BTreeSet<Ipv4Addr> = BTreeSet::new();

    for (&ip, g) in &groups {
        if in_google_anycast(ip) {
            continue;
        }
        let resolver_org = reg.org_of_ip(ip);
        let is_isp_provided = resolver_org
            .map(|org| g.node_orgs.len() == 1 && g.node_orgs.contains(&org.id.0))
            .unwrap_or(false);
        if is_isp_provided {
            out.isp_resolvers_total += 1;
            if g.nodes >= cfg.min_nodes_per_dns_server {
                out.isp_resolvers_qualified += 1;
                if g.hijacked as f64 >= cfg.hijacking_server_share * g.nodes as f64 {
                    out.isp_resolvers_hijacking += 1;
                    isp_server_set.insert(ip);
                    let org = resolver_org.expect("checked above");
                    let e = hijacking_isp_servers.entry(org.id.0).or_insert((
                        org.name.clone(),
                        org.country,
                        0,
                        0,
                    ));
                    e.2 += 1;
                    e.3 += g.nodes;
                }
            }
            continue;
        }
        // Public: used from more than two countries (§4.3.2).
        if g.nodes >= cfg.min_nodes_per_dns_server && g.node_countries.len() > 2 {
            out.public_resolvers_total += 1;
            if g.hijacked as f64 >= cfg.hijacking_server_share * g.nodes as f64 {
                public_server_set.insert(ip);
                let operator = reg
                    .org_of_ip(ip)
                    .map(|o| o.name.clone())
                    .unwrap_or_else(|| "unknown".into());
                let key = fnv(&operator);
                let e = hijacking_public.entry(key).or_insert((operator, 0, 0));
                e.1 += 1;
                e.2 += g.nodes;
            }
        }
    }
    out.isp_rows = hijacking_isp_servers
        .into_values()
        .map(|(isp, country, servers, nodes)| IspRow {
            country,
            isp,
            servers,
            nodes,
        })
        .collect();
    out.isp_rows
        .sort_by(|a, b| (a.country, &a.isp).cmp(&(b.country, &b.isp)));
    out.public_services = hijacking_public
        .into_values()
        .map(|(operator, servers, nodes)| PublicServiceRow {
            operator,
            servers,
            nodes,
        })
        .collect();
    out.public_services
        .sort_by(|a, b| b.nodes.cmp(&a.nodes).then(a.operator.cmp(&b.operator)));

    // ---- Google-DNS users and content attribution (§4.3.3) -----------------
    struct DomainAgg {
        nodes: usize,
        ases: BTreeSet<Asn>,
        countries: BTreeSet<CountryCode>,
    }
    let mut domains: BTreeMap<String, DomainAgg> = BTreeMap::new();
    for obs in &data.observations {
        if !in_google_anycast(obs.resolver_ip) {
            continue;
        }
        out.google_nodes += 1;
        let DnsOutcome::Hijacked { content } = &obs.outcome else {
            continue;
        };
        out.google_hijacked += 1;
        let mut seen_here: BTreeSet<String> = BTreeSet::new();
        for url in extract_urls(content) {
            if let Some(domain) = url_domain(&url) {
                if !seen_here.insert(domain.clone()) {
                    continue;
                }
                let agg = domains.entry(domain).or_insert(DomainAgg {
                    nodes: 0,
                    ases: BTreeSet::new(),
                    countries: BTreeSet::new(),
                });
                agg.nodes += 1;
                if let Some(asn) = reg.ip_to_asn(obs.node_ip) {
                    agg.ases.insert(asn);
                }
                agg.countries
                    .insert(reg.country_of_ip(obs.node_ip).unwrap_or(obs.country));
            }
        }
    }
    out.google_domains = domains
        .into_iter()
        .filter(|(_, a)| a.nodes >= cfg.min_nodes_per_domain)
        .map(|(domain, a)| DomainRow {
            domain,
            nodes: a.nodes,
            ases: a.ases.len(),
            countries: a.countries.len(),
            // ISP hijacks concentrate in a couple of ASes; end-host
            // software spreads wide.
            likely_endhost: a.ases.len() >= 5 && a.countries.len() >= 3,
        })
        .collect();
    out.google_domains
        .sort_by(|a, b| b.nodes.cmp(&a.nodes).then_with(|| a.domain.cmp(&b.domain)));

    // ---- Google-dominant ASes (footnote 9) ----------------------------------
    let mut per_as_google: BTreeMap<Asn, (usize, usize)> = BTreeMap::new();
    for obs in &data.observations {
        if let Some(asn) = reg.ip_to_asn(obs.node_ip) {
            let e = per_as_google.entry(asn).or_insert((0, 0));
            e.1 += 1;
            if in_google_anycast(obs.resolver_ip) {
                e.0 += 1;
            }
        }
    }
    out.google_dominant_ases = per_as_google
        .into_iter()
        .filter(|(_, (_, total))| *total >= cfg.min_nodes_per_dns_server)
        .filter(|(_, (g, total))| *g as f64 / *total as f64 >= 0.8)
        .map(|(asn, (g, total))| GoogleDominantAs {
            asn,
            org: reg
                .asn_to_org(asn)
                .map(|o| o.name.clone())
                .unwrap_or_else(|| "unknown".into()),
            nodes: total,
            google_share: g as f64 / total as f64,
        })
        .collect();

    // ---- shared-JavaScript families (§4.3.1) ---------------------------------
    struct JsFamilyAgg {
        isps: BTreeSet<String>,
        nodes: usize,
    }
    let mut js_families: BTreeMap<u64, JsFamilyAgg> = BTreeMap::new();
    for obs in &data.observations {
        let DnsOutcome::Hijacked { content } = &obs.outcome else {
            continue;
        };
        let Some(normalized) = normalize_hijack_js(content) else {
            continue;
        };
        // Attribute the page to the hijacking party's organization — the
        // resolver's owner when identifiable, else the node's ISP.
        let isp = reg
            .org_of_ip(obs.resolver_ip)
            .or_else(|| reg.org_of_ip(obs.node_ip))
            .map(|o| o.name.clone())
            .unwrap_or_else(|| "unknown".into());
        let agg = js_families
            .entry(fnv64(&normalized))
            .or_insert(JsFamilyAgg {
                isps: BTreeSet::new(),
                nodes: 0,
            });
        agg.isps.insert(isp);
        agg.nodes += 1;
    }
    out.shared_js_families = js_families
        .into_iter()
        .filter(|(_, a)| a.isps.len() >= 2)
        .map(|(script_hash, a)| {
            let mut isps: Vec<String> = a.isps.into_iter().collect();
            isps.sort();
            SharedJsFamily {
                script_hash,
                isps,
                nodes: a.nodes,
            }
        })
        .collect();
    out.shared_js_families
        .sort_by(|a, b| b.isps.len().cmp(&a.isps.len()).then(b.nodes.cmp(&a.nodes)));

    // ---- attribution (§4.4) -------------------------------------------------
    for obs in &data.observations {
        if !matches!(obs.outcome, DnsOutcome::Hijacked { .. }) {
            continue;
        }
        if isp_server_set.contains(&obs.resolver_ip) {
            out.attribution.isp += 1;
        } else if public_server_set.contains(&obs.resolver_ip) {
            out.attribution.public += 1;
        } else {
            out.attribution.other += 1;
        }
    }
    out
}

fn fnv(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in s.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::DnsObservation;
    use crate::report::figures::demo_world;
    use proxynet::ResolverChoice;

    /// Build a dataset from the demo world's ground truth: every node
    /// observed once, hijacked iff its resolver hijacks.
    fn dataset(world: &proxynet::World) -> DnsDataset {
        let mut data = DnsDataset::default();
        for id in world.node_ids() {
            let node = world.node(id);
            let (resolver_ip, hijacker) = match node.resolver {
                ResolverChoice::Isp(ip) | ResolverChoice::Public(ip) => {
                    (ip, world.resolver_def(ip).and_then(|d| d.hijacker.clone()))
                }
                ResolverChoice::GoogleDns => (std::net::Ipv4Addr::new(74, 125, 0, 9), None),
            };
            let outcome = match hijacker {
                Some(h) => DnsOutcome::Hijacked {
                    content: h.hijack_page("probe.tft-probe.example"),
                },
                None => DnsOutcome::NotHijacked,
            };
            data.observations.push(DnsObservation {
                zid: node.zid,
                node_ip: node.ip,
                resolver_ip,
                country: node.country,
                outcome,
            });
        }
        data
    }

    fn cfg() -> StudyConfig {
        StudyConfig {
            min_nodes_per_country: 1,
            min_nodes_per_dns_server: 1,
            min_nodes_per_domain: 1,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn hijacking_resolver_is_classified_as_isp_provided() {
        let world = demo_world();
        let analysis = analyze(&dataset(&world), &world, &cfg());
        assert_eq!(analysis.nodes, 4);
        assert_eq!(analysis.hijacked, 2, "both MY nodes are hijacked");
        assert_eq!(analysis.isp_resolvers_hijacking, 1);
        assert_eq!(analysis.isp_rows.len(), 1);
        assert_eq!(analysis.isp_rows[0].isp, "Assist ISP");
        assert_eq!(analysis.isp_rows[0].nodes, 2);
        // Attribution: both hijacks belong to the identified ISP server.
        assert_eq!(analysis.attribution.isp, 2);
        assert_eq!(analysis.attribution.public, 0);
        assert_eq!(analysis.attribution.other, 0);
    }

    #[test]
    fn country_rows_sorted_by_ratio() {
        let world = demo_world();
        let analysis = analyze(&dataset(&world), &world, &cfg());
        assert_eq!(analysis.by_country[0].country, CountryCode::new("MY"));
        assert!((analysis.by_country[0].ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hijack_content_urls_surface_in_domains_only_for_google_nodes() {
        let world = demo_world();
        // The demo world has no Google-DNS nodes, so the Table 5 section
        // stays empty even though hijacks exist.
        let analysis = analyze(&dataset(&world), &world, &cfg());
        assert_eq!(analysis.google_nodes, 0);
        assert!(analysis.google_domains.is_empty());
    }

    #[test]
    fn js_normalization_strips_quoted_strings() {
        let page = br#"<html><script>var r00ff='http://a.example?domain=x';window.location=r00ff;</script></html>"#;
        let normalized = normalize_hijack_js(page).expect("script found");
        assert!(!normalized.contains("a.example"));
        assert!(normalized.contains("r00ff"), "{normalized}");
    }

    #[test]
    fn attribution_shares_sum_to_one() {
        let a = Attribution {
            isp: 7,
            public: 2,
            other: 1,
        };
        let (i, p, o) = a.shares();
        assert!((i + p + o - 1.0).abs() < 1e-12);
        assert_eq!(a.total(), 10);
    }
}
