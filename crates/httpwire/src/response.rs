//! HTTP responses: serialization, parsing, and content-type helpers used by
//! the HTTP-modification experiment.

use crate::headers::Headers;
use crate::parse::{self, ParseError};
use crate::status::StatusCode;

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Reason phrase (defaults to the code's canonical phrase).
    pub reason: String,
    /// Header fields.
    pub headers: Headers,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the canonical reason phrase and a body.
    pub fn new(status: StatusCode, body: Vec<u8>) -> Response {
        Response {
            status,
            reason: status.reason().to_string(),
            headers: Headers::new(),
            body,
        }
    }

    /// A `200 OK` with the given content type and body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        let mut r = Response::new(StatusCode::OK, body);
        r.headers.set("Content-Type", content_type);
        r
    }

    /// The declared content type (without parameters), lowercased.
    pub fn content_type(&self) -> Option<String> {
        self.headers
            .get("content-type")
            .map(|v| v.split(';').next().unwrap_or(v).trim().to_ascii_lowercase())
    }

    /// Serialize to wire bytes, adding `Content-Length` unless chunked
    /// framing is declared. Thin owned wrapper over
    /// [`Response::encode_into`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        self.encode_into(&mut out);
        out
    }

    /// Serialize into `out` (cleared first): the scratch-buffer variant of
    /// [`Response::encode`]. No header clone, no owned status line — a
    /// caller-owned buffer reused across probes makes encoding
    /// allocation-free in steady state. Byte-identical to `encode`: any
    /// stale `Content-Length` is dropped where it stood and the computed
    /// one appended last, exactly where `Headers::set` would put it.
    // tft-lint: hot-root — runs once per HTTP probe
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use std::io::Write as _;
        out.clear();
        out.reserve(128 + self.body.len());
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason);
        let chunked = self.headers.is_chunked();
        for (n, v) in self.headers.iter() {
            if !chunked && n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            let _ = write!(out, "{n}: {v}\r\n");
        }
        if !chunked {
            let _ = write!(out, "Content-Length: {}\r\n", self.body.len());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Parse a complete response. Returns the response and bytes consumed.
    /// Responses without framing headers consume the rest of the input
    /// (HTTP/1.0-style close-delimited bodies).
    // tft-lint: hot-root — runs once per HTTP probe
    // tft-lint: wire-entry — parses untrusted bytes
    pub fn parse(input: &[u8]) -> Result<(Response, usize), ParseError> {
        let (start_line, headers, body_start) = parse::head(input)?;
        let mut parts = start_line.splitn(3, ' ');
        let version = parts.next().ok_or(ParseError::BadStartLine)?;
        if !version.starts_with("HTTP/1.") {
            return Err(ParseError::BadStartLine);
        }
        let code: u16 = parts
            .next()
            .ok_or(ParseError::BadStartLine)?
            .parse()
            .map_err(|_| ParseError::BadStartLine)?;
        let reason = parts.next().unwrap_or("").to_string();
        let (body, consumed) = parse::body(&headers, input, body_start, true)?;
        Ok((
            Response {
                status: StatusCode(code),
                reason,
                headers,
                body,
            },
            consumed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunked;

    #[test]
    fn encode_adds_content_length() {
        let r = Response::ok("text/html", b"<html></html>".to_vec());
        let wire = String::from_utf8(r.encode()).unwrap();
        assert!(wire.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(wire.contains("Content-Length: 13\r\n"));
        assert!(wire.ends_with("<html></html>"));
    }

    #[test]
    fn encode_into_matches_encode() {
        // Plain, stale-Content-Length, and chunked responses must render
        // identically through both paths (the scratch buffer is reused).
        let mut scratch = b"garbage from a previous probe".to_vec();
        let mut stale = Response::ok("text/html", b"abcdef".to_vec());
        stale.headers.append("Content-Length", "999");
        stale.headers.append("X-After", "kept");
        let mut chunked = Response::new(StatusCode::OK, Vec::new());
        chunked.headers.set("Transfer-Encoding", "chunked");
        chunked.headers.set("Content-Length", "7");
        for r in [
            Response::ok("image/jpeg", vec![0xFF, 0xD8]),
            Response::new(StatusCode::NOT_FOUND, b"not found".to_vec()),
            stale,
            chunked,
        ] {
            r.encode_into(&mut scratch);
            assert_eq!(scratch, r.encode());
        }
    }

    #[test]
    fn parse_roundtrip() {
        let r = Response::ok("image/jpeg", vec![0xFF, 0xD8, 0xFF, 0xE0]);
        let wire = r.encode();
        let (parsed, consumed) = Response::parse(&wire).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(parsed.status, StatusCode::OK);
        assert_eq!(parsed.body, vec![0xFF, 0xD8, 0xFF, 0xE0]);
        assert_eq!(parsed.content_type().as_deref(), Some("image/jpeg"));
    }

    #[test]
    fn parse_chunked_body() {
        let mut r = Response::new(StatusCode::OK, Vec::new());
        r.headers.set("Transfer-Encoding", "chunked");
        let mut wire = r.encode();
        wire.extend_from_slice(&chunked::encode(b"streamed content", 4));
        let (parsed, consumed) = Response::parse(&wire).unwrap();
        assert_eq!(parsed.body, b"streamed content");
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn close_delimited_body() {
        let raw = b"HTTP/1.1 200 OK\r\n\r\neverything until close";
        let (parsed, consumed) = Response::parse(raw).unwrap();
        assert_eq!(parsed.body, b"everything until close");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn content_type_strips_parameters() {
        let mut r = Response::new(StatusCode::OK, vec![]);
        r.headers.set("Content-Type", "Text/HTML; charset=utf-8");
        assert_eq!(r.content_type().as_deref(), Some("text/html"));
    }

    #[test]
    fn reason_phrase_with_spaces_survives() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n";
        let (parsed, _) = Response::parse(raw).unwrap();
        assert_eq!(parsed.reason, "Not Found");
    }

    #[test]
    fn rejects_bad_status_line() {
        assert!(Response::parse(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(Response::parse(b"SPDY/1 200 OK\r\n\r\n").is_err());
    }
}
