//! URI handling for the subset of HTTP the proxy ecosystem uses.
//!
//! Proxy requests take the *absolute form* (`GET http://foo.com/ HTTP/1.1`),
//! CONNECT takes the *authority form* (`CONNECT 1.2.3.4:443`), and origin
//! servers see the *origin form* (`GET /path`). This module parses all
//! three.

use std::fmt;
use std::str::FromStr;

/// A parsed `http://` URI (the ecosystem never dereferences `https://` URIs
/// through the proxy; TLS goes through CONNECT tunnels instead).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Uri {
    /// URI scheme (`http` or `https`).
    pub scheme: Scheme,
    /// Host (a DNS name or an IPv4 literal).
    pub host: String,
    /// Explicit port, if present.
    pub port: Option<u16>,
    /// Path, always beginning with `/`.
    pub path: String,
}

/// URI scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Plain HTTP.
    Http,
    /// HTTP over TLS.
    Https,
}

impl Scheme {
    /// Default port for the scheme.
    pub fn default_port(self) -> u16 {
        match self {
            Scheme::Http => 80,
            Scheme::Https => 443,
        }
    }

    /// Scheme name.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// Errors parsing a URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UriError {
    /// Scheme missing or not http/https.
    BadScheme,
    /// Host empty or contains invalid characters.
    BadHost,
    /// Port not a valid u16.
    BadPort,
}

impl fmt::Display for UriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UriError::BadScheme => write!(f, "bad or missing scheme"),
            UriError::BadHost => write!(f, "bad host"),
            UriError::BadPort => write!(f, "bad port"),
        }
    }
}

impl std::error::Error for UriError {}

fn valid_host(h: &str) -> bool {
    !h.is_empty()
        && h.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-' || b == b'_')
}

impl Uri {
    /// Build an `http://` URI.
    pub fn http(host: &str, path: &str) -> Uri {
        assert!(valid_host(host), "invalid host {host:?}");
        Uri {
            scheme: Scheme::Http,
            host: host.to_ascii_lowercase(),
            port: None,
            path: normalize_path(path),
        }
    }

    /// Build an `https://` URI.
    pub fn https(host: &str, path: &str) -> Uri {
        assert!(valid_host(host), "invalid host {host:?}");
        Uri {
            scheme: Scheme::Https,
            host: host.to_ascii_lowercase(),
            port: None,
            path: normalize_path(path),
        }
    }

    /// Parse an absolute URI.
    pub fn parse(s: &str) -> Result<Uri, UriError> {
        let (scheme, rest) = if let Some(rest) = s.strip_prefix("http://") {
            (Scheme::Http, rest)
        } else if let Some(rest) = s.strip_prefix("https://") {
            (Scheme::Https, rest)
        } else {
            return Err(UriError::BadScheme);
        };
        let (authority, path) = match rest.find('/') {
            Some(i) => rest.split_at(i),
            None => (rest, "/"),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| UriError::BadPort)?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        if !valid_host(host) {
            return Err(UriError::BadHost);
        }
        Ok(Uri {
            scheme,
            host: host.to_ascii_lowercase(),
            port,
            path: path.to_string(),
        })
    }

    /// The effective port (explicit or the scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or_else(|| self.scheme.default_port())
    }

    /// The `host` or `host:port` authority string (port omitted when
    /// default).
    pub fn authority(&self) -> String {
        match self.port {
            Some(p) if p != self.scheme.default_port() => format!("{}:{p}", self.host),
            _ => self.host.clone(),
        }
    }
}

fn normalize_path(path: &str) -> String {
    if path.starts_with('/') {
        path.to_string()
    } else {
        format!("/{path}")
    }
}

impl fmt::Display for Uri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://{}{}",
            self.scheme.as_str(),
            self.authority(),
            self.path
        )
    }
}

impl FromStr for Uri {
    type Err = UriError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Uri::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let u = Uri::parse("http://probe.example/obj/page.html").unwrap();
        assert_eq!(u.scheme, Scheme::Http);
        assert_eq!(u.host, "probe.example");
        assert_eq!(u.path, "/obj/page.html");
        assert_eq!(u.effective_port(), 80);
    }

    #[test]
    fn parse_with_port() {
        let u = Uri::parse("https://site.example:8443/").unwrap();
        assert_eq!(u.port, Some(8443));
        assert_eq!(u.effective_port(), 8443);
        assert_eq!(u.authority(), "site.example:8443");
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u = Uri::parse("http://foo.com").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.to_string(), "http://foo.com/");
    }

    #[test]
    fn host_is_lowercased() {
        assert_eq!(Uri::parse("http://FOO.Com/").unwrap().host, "foo.com");
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "http://a.example/",
            "https://b.example/x/y",
            "http://c.example:8080/z",
        ] {
            assert_eq!(Uri::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn default_port_elided_in_authority() {
        let u = Uri::parse("http://foo.com:80/").unwrap();
        assert_eq!(u.authority(), "foo.com");
        assert_eq!(u.to_string(), "http://foo.com/");
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Uri::parse("ftp://x/"), Err(UriError::BadScheme));
        assert_eq!(Uri::parse("http:///"), Err(UriError::BadHost));
        assert_eq!(Uri::parse("http://h:99999/"), Err(UriError::BadPort));
        assert_eq!(Uri::parse("http://sp ace/"), Err(UriError::BadHost));
    }
}
