//! Property-based tests for the prefix trie and CIDR types.

use inetdb::{Ipv4Net, PrefixTrie};
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Reference longest-prefix match: scan all prefixes, keep the longest that
/// contains the address.
fn reference_lpm(routes: &HashMap<Ipv4Net, u32>, ip: Ipv4Addr) -> Option<u32> {
    routes
        .iter()
        .filter(|(net, _)| net.contains(ip))
        .max_by_key(|(net, _)| net.prefix_len())
        .map(|(_, v)| *v)
}

fn arb_net() -> impl Strategy<Value = Ipv4Net> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Net::new(Ipv4Addr::from(addr), len))
}

proptest! {
    #[test]
    fn trie_matches_reference_lpm(
        routes in proptest::collection::hash_map(arb_net(), any::<u32>(), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        let mut trie = PrefixTrie::new();
        for (&net, &v) in &routes {
            trie.insert(net, v);
        }
        prop_assert_eq!(trie.len(), routes.len());
        for p in probes {
            let ip = Ipv4Addr::from(p);
            prop_assert_eq!(trie.lookup(ip).copied(), reference_lpm(&routes, ip));
        }
    }

    #[test]
    fn cidr_display_parse_roundtrip(addr in any::<u32>(), len in 0u8..=32) {
        let net = Ipv4Net::new(Ipv4Addr::from(addr), len);
        let parsed: Ipv4Net = net.to_string().parse().unwrap();
        prop_assert_eq!(net, parsed);
    }

    #[test]
    fn cidr_contains_its_own_addresses(addr in any::<u32>(), len in 8u8..=32) {
        let net = Ipv4Net::new(Ipv4Addr::from(addr), len);
        // Probe first, last, and a middle address of the prefix.
        let size = net.size();
        for i in [0, size / 2, size - 1] {
            prop_assert!(net.contains(net.nth(i)));
        }
    }

    #[test]
    fn exact_get_after_insert(routes in proptest::collection::hash_map(arb_net(), any::<u32>(), 1..32)) {
        let mut trie = PrefixTrie::new();
        for (&net, &v) in &routes {
            trie.insert(net, v);
        }
        for (&net, &v) in &routes {
            prop_assert_eq!(trie.get(net), Some(&v));
        }
    }
}
