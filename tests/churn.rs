//! The study must survive a dynamic peer population: nodes joining and
//! leaving at residential timescales while the campaign runs.

use tft::netsim::SimDuration;
use tft::prelude::*;
use tft::tft_core::obs::DnsOutcome;

#[test]
fn study_survives_residential_churn() {
    let scale = 0.004;
    let mut built = build(&paper_spec(scale, 0xC403));
    // Mean 10 minutes between toggles: each node flaps several times over
    // the campaign's simulated days.
    built.world.enable_churn(SimDuration::from_mins(10));
    let cfg = StudyConfig::scaled(scale);
    let data = tft::tft_core::dns_exp::run(&mut built.world, &cfg);

    assert!(
        data.observations.len() > 800,
        "only {} observations under churn",
        data.observations.len()
    );
    // Churn raises discards (node flips between d1 and d2, zID mismatch on
    // retry) but the completed pairs stay sound: hijack outcomes still
    // match the planted truth exactly.
    for obs in &data.observations {
        let node = built
            .world
            .node_ids()
            .find(|id| built.world.node(*id).zid == obs.zid)
            .expect("zid resolves");
        let planted = built.truth.dns_hijacked.contains_key(&node);
        let detected = matches!(obs.outcome, DnsOutcome::Hijacked { .. });
        assert_eq!(
            planted, detected,
            "churn corrupted a measurement on {}",
            obs.zid
        );
    }
    assert!(
        data.discarded > 0,
        "with this much churn some pairs must be discarded"
    );
}

#[test]
fn churn_actually_toggles_nodes() {
    let mut built = build(&tft::worldgen::smoke_spec(9));
    let before: usize = built
        .world
        .node_ids()
        .filter(|id| built.world.node(*id).online)
        .count();
    built.world.enable_churn(SimDuration::from_mins(5));
    built.world.advance(SimDuration::from_mins(7));
    let after: usize = built
        .world
        .node_ids()
        .filter(|id| built.world.node(*id).online)
        .count();
    assert_eq!(before, built.world.node_count());
    assert!(
        after < before,
        "after a churn interval some nodes must be offline ({after}/{before})"
    );
}
