//! A deterministic load generator on virtual time.
//!
//! Simulates thousands of concurrent clients against one [`Gateway`]:
//! **open-loop** arrivals (every client's arrival time is drawn up front
//! from its own forked [`netsim::SimRng`] stream, independent of how the
//! server responds) over a mixed **hot/cold** spec distribution — a small
//! hot set most clients resubmit (exercising the cache and the
//! single-flight guard) plus cold specs with unique seeds (forcing real
//! executions and evictions).
//!
//! The entire request trace — arrival times, spec choices, poll and retry
//! schedules — is a pure function of the config, and the gateway itself is
//! deterministic, so the concatenated responses digest to the same 64-bit
//! value at any worker count. `BENCH_serve.json` and the workspace e2e
//! test both pin that digest across workers 1/2/8.

use crate::cache::{StudyKey, TierStats};
use crate::gateway::{Gateway, GatewayConfig, GatewayStats};
use httpwire::{Request, Response};
use netsim::rng::RngExt;
use netsim::{SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use substrate::json::{Json, ToJson};
use substrate::Hasher64;
use worldgen::WorldSpec;

/// Load-generator tuning.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Master seed for the whole trace.
    pub seed: u64,
    /// Number of clients; each submits one spec (plus polls/retries).
    pub clients: usize,
    /// Window over which arrivals spread.
    pub window: SimDuration,
    /// Distinct specs in the hot set.
    pub hot_specs: usize,
    /// Distinct cold specs (unique seeds, each a real execution).
    pub cold_specs: usize,
    /// Probability a client draws from the hot set.
    pub hot_fraction: f64,
    /// Gateway under test.
    pub gateway: GatewayConfig,
}

impl LoadGenConfig {
    /// A CI-sized run: thousands of requests, a handful of real
    /// executions.
    pub fn quick(workers: usize, seed: u64) -> LoadGenConfig {
        LoadGenConfig {
            seed,
            clients: 2_000,
            window: SimDuration::from_secs(120),
            hot_specs: 2,
            cold_specs: 2,
            hot_fraction: 0.9,
            gateway: GatewayConfig {
                workers,
                ..GatewayConfig::default()
            },
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total HTTP requests issued.
    pub requests: u64,
    /// `POST /studies` requests.
    pub posts: u64,
    /// `GET /studies/{id}` requests.
    pub gets: u64,
    /// Stable digest over every response, in trace order. Equal digests ⇒
    /// byte-identical responses.
    pub response_digest: u64,
    /// 95th-percentile request latency, virtual milliseconds. Accepted
    /// submissions are charged submission→completion; immediately-answered
    /// requests (hits, polls, rejections) are charged 1 ms.
    pub p95_latency_ms: u64,
    /// Mean over the same latencies.
    pub mean_latency_ms: f64,
    /// Tier-2 hit rate over POST admissions.
    pub cache_hit_rate: f64,
    /// Gateway request counters.
    pub stats: GatewayStats,
    /// Tier-1 (world) cache counters.
    pub world_cache: TierStats,
    /// Tier-2 (report) cache counters.
    pub report_cache: TierStats,
    /// Virtual time of the last trace event.
    pub virtual_end_ms: u64,
}

impl ToJson for LoadReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("requests".into(), Json::uint(self.requests)),
            ("posts".into(), Json::uint(self.posts)),
            ("gets".into(), Json::uint(self.gets)),
            (
                "response_digest".into(),
                Json::str(format!("{:016x}", self.response_digest)),
            ),
            ("p95_latency_ms".into(), Json::uint(self.p95_latency_ms)),
            ("mean_latency_ms".into(), Json::float(self.mean_latency_ms)),
            ("cache_hit_rate".into(), Json::float(self.cache_hit_rate)),
            ("accepted".into(), Json::uint(self.stats.accepted)),
            ("joined".into(), Json::uint(self.stats.joined)),
            ("cache_hits".into(), Json::uint(self.stats.cache_hits)),
            ("rejected".into(), Json::uint(self.stats.rejected)),
            (
                "studies_executed".into(),
                Json::uint(self.stats.studies_executed),
            ),
            ("worlds_built".into(), Json::uint(self.stats.worlds_built)),
            ("virtual_end_ms".into(), Json::uint(self.virtual_end_ms)),
        ])
    }
}

/// Offsets (from submission) at which an accepted client polls its study.
const POLL_OFFSETS_MS: [u64; 2] = [1_200, 3_600];
/// Retries a client will attempt after `429` before giving up.
const MAX_ATTEMPTS: u8 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Post { spec: usize, attempt: u8 },
    Get { spec: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_ms: u64,
    seq: u64,
    kind: Kind,
}

/// Run the trace described by `cfg` against a fresh gateway.
pub fn run(cfg: &LoadGenConfig) -> LoadReport {
    assert!(
        cfg.hot_specs > 0 && cfg.cold_specs > 0,
        "need both spec sets"
    );
    // The spec universe: hot set first, then cold. Seeds are disjoint by
    // construction.
    let specs: Vec<WorldSpec> = (0..cfg.hot_specs)
        .map(|j| worldgen::smoke_spec(0x4070_0000 + j as u64))
        .chain((0..cfg.cold_specs).map(|i| worldgen::smoke_spec(0xC01D_0000 + i as u64)))
        .collect();
    let keys: Vec<StudyKey> = specs.iter().map(StudyKey::for_spec).collect();
    let post_wires: Vec<Vec<u8>> = specs.iter().map(encode_post).collect();
    let get_wires: Vec<Vec<u8>> = keys.iter().map(encode_get).collect();

    // Open-loop arrivals: one POST per client, spec and time drawn from the
    // client's own forked stream.
    let rng = SimRng::new(cfg.seed);
    let window_ms = cfg.window.as_millis().max(1);
    let mut events: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    for client in 0..cfg.clients {
        let mut r = rng.fork_indexed("client", client as u64);
        let time_ms: u64 = r.random_range(0..window_ms);
        let spec = if r.random_bool(cfg.hot_fraction) {
            r.random_range(0..cfg.hot_specs)
        } else {
            cfg.hot_specs + r.random_range(0..cfg.cold_specs)
        };
        events.push(Reverse(Event {
            time_ms,
            seq: client as u64,
            kind: Kind::Post { spec, attempt: 1 },
        }));
    }

    let mut gw = Gateway::new(cfg.gateway.clone());
    let mut digest = Hasher64::new();
    let mut seq = cfg.clients as u64;
    let mut posts = 0u64;
    let mut gets = 0u64;
    // (arrival, key index) of every accepted/joined POST, for latency.
    let mut awaiting: Vec<(u64, usize)> = Vec::new();
    let mut immediate = 0u64; // requests answered on the spot (1 ms each)
    let mut submitted: BTreeSet<usize> = BTreeSet::new();
    let mut last_ms = 0u64;

    while let Some(Reverse(ev)) = events.pop() {
        last_ms = last_ms.max(ev.time_ms);
        let now = SimTime::from_millis(ev.time_ms);
        match ev.kind {
            Kind::Post { spec, attempt } => {
                posts += 1;
                // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "spec is an index the generator itself enqueued into 0..wires.len(); no external input involved")
                let raw = gw.handle(&post_wires[spec], now);
                absorb(&mut digest, &raw);
                // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "parsing our own gateway's in-process response, not wire input; unparseable output is a gateway bug worth crashing the bench on")
                let (resp, _) = Response::parse(&raw).expect("gateway responses parse");
                match resp.status.0 {
                    202 => {
                        submitted.insert(spec);
                        awaiting.push((ev.time_ms, spec));
                        for (i, off) in POLL_OFFSETS_MS.iter().enumerate() {
                            events.push(Reverse(Event {
                                time_ms: ev.time_ms + off,
                                seq: seq + i as u64,
                                kind: Kind::Get { spec },
                            }));
                        }
                        seq += POLL_OFFSETS_MS.len() as u64;
                    }
                    429 if attempt < MAX_ATTEMPTS => {
                        // Honor Retry-After: terminal-vs-retry dispatch.
                        immediate += 1;
                        let secs: u64 = resp
                            .headers
                            .get("Retry-After")
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(1);
                        events.push(Reverse(Event {
                            time_ms: ev.time_ms + secs * 1_000,
                            seq,
                            kind: Kind::Post {
                                spec,
                                attempt: attempt + 1,
                            },
                        }));
                        seq += 1;
                    }
                    _ => immediate += 1, // cache hit, or gave up after 429s
                }
            }
            Kind::Get { spec } => {
                gets += 1;
                // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "spec is an index the generator itself enqueued into 0..wires.len(); no external input involved")
                let raw = gw.handle(&get_wires[spec], now);
                absorb(&mut digest, &raw);
                immediate += 1;
            }
        }
    }

    // Drain: step past the backlog and fetch every submitted study's final
    // body, so completed tables/annexes enter the digest.
    let drain_ms = last_ms.max(gw.busy_until().as_millis()) + 1_000;
    last_ms = drain_ms;
    for &spec in &submitted {
        gets += 1;
        // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "spec is an index the generator itself enqueued into 0..wires.len(); no external input involved")
        let raw = gw.handle(&get_wires[spec], SimTime::from_millis(drain_ms));
        absorb(&mut digest, &raw);
        immediate += 1;
    }

    // Latencies: completion-time minus arrival for accepted/joined POSTs,
    // 1 ms for everything answered immediately.
    let mut latencies: Vec<u64> = Vec::with_capacity(awaiting.len() + immediate as usize);
    for &(arrival, spec) in &awaiting {
        // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "spec is an index the generator itself enqueued into 0..keys.len(); no external input involved")
        let key = &keys[spec];
        let done = gw
            .finished_at(key)
            // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "generator invariant: the drain above stepped past busy_until, so every submitted study finished")
            .expect("drain completed every submitted study")
            .as_millis();
        latencies.push(done.saturating_sub(arrival).max(1));
    }
    latencies.extend(std::iter::repeat_n(1u64, immediate as usize));
    latencies.sort_unstable();

    let stats = gw.stats();
    let (world_cache, report_cache) = gw.cache_stats();
    LoadReport {
        requests: posts + gets,
        posts,
        gets,
        response_digest: digest.finish(),
        p95_latency_ms: percentile(&latencies, 0.95),
        mean_latency_ms: latencies.iter().sum::<u64>() as f64 / latencies.len().max(1) as f64,
        cache_hit_rate: report_cache.hit_rate(),
        stats,
        world_cache,
        report_cache,
        virtual_end_ms: last_ms,
    }
}

fn encode_post(spec: &WorldSpec) -> Vec<u8> {
    // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "the load generator renders its own hardcoded specs, not caller input; a render failure is a bug in this crate")
    let body = worldgen::to_json(spec).expect("specs render").into_bytes();
    let mut req = Request::origin_get("gateway", "/studies");
    req.method = httpwire::Method::Post;
    req.headers.set("Content-Length", &body.len().to_string());
    req.body = body;
    req.encode()
}

fn encode_get(key: &StudyKey) -> Vec<u8> {
    Request::origin_get("gateway", &format!("/studies/{}", key.study_id())).encode()
}

/// Length-prefix each response so frame boundaries are unambiguous.
fn absorb(digest: &mut Hasher64, raw: &[u8]) {
    digest.update(&(raw.len() as u64).to_le_bytes());
    digest.update(raw);
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    // tft-lint: allow(no-panic-on-untrusted-bytes, reason = "idx is clamped into 0..len on the line above; no input reaches this computation")
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A run small enough for a unit test: one hot spec, one cold, few
    /// clients, real executions included.
    fn tiny(workers: usize) -> LoadGenConfig {
        LoadGenConfig {
            seed: 0x10AD,
            clients: 40,
            window: SimDuration::from_secs(30),
            hot_specs: 1,
            cold_specs: 1,
            hot_fraction: 0.8,
            gateway: GatewayConfig {
                workers,
                ..GatewayConfig::default()
            },
        }
    }

    #[test]
    fn trace_is_reproducible() {
        let a = run(&tiny(2));
        let b = run(&tiny(2));
        assert_eq!(a.response_digest, b.response_digest);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.p95_latency_ms, b.p95_latency_ms);
    }

    #[test]
    fn hot_traffic_hits_the_cache() {
        let r = run(&tiny(1));
        assert!(r.stats.cache_hits > 0, "hot set never hit: {r:?}");
        assert!(
            r.stats.studies_executed <= 2,
            "at most one execution per distinct spec: {r:?}"
        );
        assert!(r.cache_hit_rate > 0.0);
        assert_eq!(r.requests, r.posts + r.gets);
    }

    #[test]
    fn report_renders_as_json() {
        let r = run(&tiny(1));
        let doc = r.to_json().render();
        let back = substrate::json::parse(&doc).expect("report JSON parses");
        assert_eq!(
            back.get("requests").and_then(Json::as_u64),
            Some(r.requests)
        );
        assert!(back.get("cache_hit_rate").is_some());
    }
}
