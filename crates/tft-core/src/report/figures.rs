//! Figure renderers.
//!
//! Figures 1–4 are request timelines; they are regenerated as event traces
//! from a small demonstration world. Figure 5 is the refetch-delay CDF,
//! rendered as an ASCII plot plus the underlying data series.

use crate::analysis::monitor::MonitorAnalysis;
use dnswire::{server::inetdb_net::Net, AnswerOverride, DnsName};
use httpwire::{Response, Uri};
use inetdb::{CountryCode, InternetRegistry};
use middlebox::{
    monitor::profiles, HijackVector, InvalidCertPolicy, JsFamily, MonitorEntity, NxdomainHijacker,
    Selectivity, SourcePattern, TlsInterceptor,
};
use netsim::{SimRng, SimTime};
use proxynet::{
    ExitNode, NodeId, OriginSite, Platform, ResolverChoice, ResolverDef, UsernameOptions, World,
};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// A minimal deterministic world for the timeline figures: one clean node,
/// one hijacked node, one TLS-intercepted node, one monitored node.
pub fn demo_world() -> World {
    let mut reg = InternetRegistry::new();
    let google = reg.register_org("Google", CountryCode::new("US"));
    let gasn = reg.register_as_with_prefix(google, inetdb::GOOGLE_ANYCAST_NET.parse().unwrap());
    let isp_org = reg.register_org("Demo ISP", CountryCode::new("US"));
    let isp_asn = reg.register_as(isp_org, 1);
    let hij_org = reg.register_org("Assist ISP", CountryCode::new("MY"));
    let hij_asn = reg.register_as(hij_org, 1);
    let lab_org = reg.register_org("Measurement Lab", CountryCode::new("US"));
    let lab_asn = reg.register_as(lab_org, 1);
    let mon_org = reg.register_org("Demo AV Cloud", CountryCode::new("US"));
    let mon_asn = reg.register_as(mon_org, 1);
    let host_org = reg.register_org("Hosting", CountryCode::new("US"));
    let host_asn = reg.register_as(host_org, 1);

    let web_ip = reg.alloc_ip(lab_asn);
    let anycast = vec![reg.alloc_ip(gasn), reg.alloc_ip(gasn)];
    let clean_resolver = reg.alloc_ip(isp_asn);
    let hij_resolver = reg.alloc_ip(hij_asn);
    let landing_ip = reg.alloc_ip(hij_asn);
    let monitor_ip = reg.alloc_ip(mon_asn);
    let site_ip = reg.alloc_ip(host_asn);
    let node_ips: Vec<Ipv4Addr> = (0..4)
        .map(|i| {
            if i < 2 {
                reg.alloc_ip(isp_asn)
            } else {
                reg.alloc_ip(hij_asn)
            }
        })
        .collect();
    reg.snapshot_rib();

    let mut rng = SimRng::new(0xF1);
    let (roots, mut cas) = certs::RootStore::os_x_like(3, SimTime::EPOCH, &mut rng);
    let mut world = World::new(
        0xF16,
        DnsName::parse("tft-probe.example").expect("valid"),
        web_ip,
        anycast,
        reg,
        roots,
    );
    world.add_resolver(ResolverDef {
        ip: clean_resolver,
        asn: isp_asn,
        hijacker: None,
    });
    let hijacker = NxdomainHijacker::new(
        HijackVector::IspResolver,
        vec!["http://assist.demo.example".into()],
        landing_ip,
        JsFamily::Custom,
    );
    world.add_resolver(ResolverDef {
        ip: hij_resolver,
        asn: hij_asn,
        hijacker: Some(hijacker.clone()),
    });
    world.add_landing(landing_ip, hijacker);

    let leaf = cas[0].issue_leaf("demo-site.example", SimTime::EPOCH, &mut rng);
    world.add_origin_site(OriginSite {
        host: "demo-site.example".into(),
        ip: site_ip,
        http_body: b"<html>demo</html>".to_vec(),
        chain: vec![leaf, cas[0].cert.clone()],
        chain_valid: true,
    });

    let monitor = world.add_monitor(MonitorEntity {
        name: "Demo AV Cloud".into(),
        source_ips: vec![monitor_ip],
        source_pattern: SourcePattern::AnyFromPool,
        model: profiles::trend_micro(),
        user_agent: "DemoAV/1.0".into(),
    });

    for (i, ip) in node_ips.iter().enumerate() {
        let (asn, country, resolver) = if i < 2 {
            (
                isp_asn,
                CountryCode::new("US"),
                ResolverChoice::Isp(clean_resolver),
            )
        } else {
            (
                hij_asn,
                CountryCode::new("MY"),
                ResolverChoice::Isp(hij_resolver),
            )
        };
        let mut node = ExitNode::new(
            NodeId(i as u32),
            *ip,
            asn,
            country,
            Platform::Windows,
            resolver,
        );
        if i == 1 {
            node.software.monitors.push(monitor);
            let mut r = SimRng::new(0xAB + i as u64);
            node.software.tls_interceptor = Some(TlsInterceptor::new(
                certs::DistinguishedName::cn("Demo AV Shield Root"),
                true,
                InvalidCertPolicy::SpoofSameIssuer,
                false,
                Selectivity::All,
                SimTime::EPOCH,
                &mut r,
            ));
        }
        world.add_node(node);
    }
    world
}

fn provision(world: &mut World, label: &str, conditional: bool) -> String {
    let apex = world.auth_apex().clone();
    let name = apex.child(label).expect("valid label");
    let host = name.to_string();
    let web_ip = world.web_ip();
    world
        .auth_server_mut()
        .zone_mut()
        .add_a(name.clone(), web_ip);
    if conditional {
        world.auth_server_mut().set_override(
            name,
            AnswerOverride::NxdomainUnlessFrom(vec![Net::new(Ipv4Addr::new(74, 125, 0, 0), 16)]),
        );
    }
    world.web_server_mut().put(
        &host,
        "/",
        Response::ok("text/html", b"<html>fig</html>".to_vec()),
    );
    host
}

/// Figure 1: the life of one proxied request.
pub fn figure1(world: &mut World) -> String {
    world.set_tracing(true);
    world.clear_trace();
    let host = provision(world, "fig1", false);
    let opts = UsernameOptions::new("figures")
        .country(CountryCode::new("US"))
        .dns_remote();
    let _ = world.proxy_get(&opts, &Uri::http(&host, "/"));
    let out = format!(
        "Figure 1 — timeline of a request through the proxy service\n{}",
        world.trace().render_timeline()
    );
    world.set_tracing(false);
    out
}

/// Figure 2: the d₁/d₂ NXDOMAIN measurement.
pub fn figure2(world: &mut World) -> String {
    world.set_tracing(true);
    world.clear_trace();
    let d1 = provision(world, "fig2-d1", false);
    let d2 = provision(world, "fig2-d2", true);
    let opts = UsernameOptions::new("figures")
        .country(CountryCode::new("MY"))
        .session(92)
        .dns_remote();
    let _ = world.proxy_get(&opts, &Uri::http(&d1, "/"));
    let _ = world.proxy_get(&opts, &Uri::http(&d2, "/"));
    let out = format!(
        "Figure 2 — timeline of the NXDOMAIN hijack measurement (d1 then d2)\n{}",
        world.trace().render_timeline()
    );
    world.set_tracing(false);
    out
}

/// Figure 3: the two-phase certificate scan.
pub fn figure3(world: &mut World) -> String {
    world.set_tracing(true);
    world.clear_trace();
    let ip = world.site_address("demo-site.example").expect("demo site");
    // Session 7 pins the TLS-intercepted node in the demo world.
    for session in [7, 8] {
        let opts = UsernameOptions::new("figures")
            .country(CountryCode::new("US"))
            .session(session);
        let _ = world.proxy_connect_tls(&opts, ip, 443, "demo-site.example");
    }
    let out = format!(
        "Figure 3 — timeline of the certificate-replacement measurement\n{}",
        world.trace().render_timeline()
    );
    world.set_tracing(false);
    out
}

/// Figure 4: the content-monitoring measurement.
pub fn figure4(world: &mut World) -> String {
    world.set_tracing(true);
    world.clear_trace();
    let host = provision(world, "fig4", false);
    // Find the monitored node by probing sessions until refetches appear.
    for session in 0..16 {
        let opts = UsernameOptions::new("figures")
            .country(CountryCode::new("US"))
            .session(1000 + session);
        let _ = world.proxy_get(&opts, &Uri::http(&host, "/"));
    }
    world.run_to_quiescence();
    let out = format!(
        "Figure 4 — timeline of the content-monitoring measurement\n{}",
        world.trace().render_timeline()
    );
    world.set_tracing(false);
    out
}

/// Figure 5: CDF of the delay between a node's request and each unexpected
/// refetch, per entity, on a log-scaled x axis.
pub fn figure5(monitor: &MonitorAnalysis) -> String {
    let mut s =
        String::from("\nFigure 5 — CDF of refetch delay per monitoring entity (x log-scaled)\n");
    // Quantile summary.
    writeln!(
        s,
        "{:<26} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "entity", "pre%", "p10(s)", "p50(s)", "p90(s)", "max(s)"
    )
    .unwrap();
    for e in monitor.entities.iter().take(6) {
        match e.delay_cdf() {
            Some(cdf) => writeln!(
                s,
                "{:<26} {:>6.0}% {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                e.name,
                e.prefetch_fraction() * 100.0,
                cdf.quantile(0.10),
                cdf.quantile(0.50),
                cdf.quantile(0.90),
                cdf.max().unwrap_or(0.0),
            )
            .unwrap(),
            None => writeln!(s, "{:<26} all refetches preceded the request", e.name).unwrap(),
        }
    }
    // ASCII plot: 64 columns spanning 1s..20,000s log-scaled, 6 curves.
    const COLS: usize = 64;
    const ROWS: usize = 16;
    let (lo, hi) = (1.0f64, 20_000.0f64);
    let mut grid = vec![vec![b' '; COLS]; ROWS];
    let marks = [b'T', b'K', b'C', b'A', b'B', b'I'];
    let mut legend = String::new();
    for (ei, e) in monitor.entities.iter().take(6).enumerate() {
        let Some(cdf) = e.delay_cdf() else { continue };
        let base = e.prefetch_fraction();
        #[allow(clippy::needless_range_loop)] // grid is indexed by (row, col)
        for col in 0..COLS {
            let x = lo * (hi / lo).powf(col as f64 / (COLS - 1) as f64);
            // Overall CDF including the negative (prefetch) mass.
            let f = base + (1.0 - base) * cdf.fraction_at(x);
            let row = ((1.0 - f) * (ROWS - 1) as f64).round() as usize;
            if grid[row][col] == b' ' {
                grid[row][col] = marks[ei];
            }
        }
        writeln!(legend, "  {} = {}", marks[ei] as char, e.name).unwrap();
    }
    writeln!(s, "1.0 ┤").unwrap();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "    "
        } else if i == ROWS - 1 {
            "0.0 "
        } else {
            "    "
        };
        writeln!(s, "{label}│{}", String::from_utf8_lossy(row)).unwrap();
    }
    writeln!(s, "    └{}", "─".repeat(COLS)).unwrap();
    writeln!(s, "     1s{:>20}{:>20}{:>20}", "~30s", "~10min", "~5h").unwrap();
    s.push_str(&legend);
    s
}
