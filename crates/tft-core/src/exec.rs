//! Deterministic parallel study executor.
//!
//! The paper's selling point is scale — 1.2M vantage points measured "in
//! days, not years" (§1) — and a real measurement backend runs crawler
//! instances in parallel. This module makes [`crate::run_study`] parallel
//! **without giving up byte-identical determinism**:
//!
//! - The exit-node population is partitioned by *country* into a fixed
//!   number of shards ([`SHARD_COUNT`] — a semantic constant of the
//!   campaign plan, never derived from the machine). A node belongs to
//!   exactly one country, so shard populations are disjoint and the merged
//!   datasets have no cross-shard interference.
//! - Each shard runs an experiment on its own [`World`] clone, drawing
//!   every random decision from a label-forked [`netsim::SimRng`]
//!   (`fork_indexed("shard", k)`). Seeds derive from virtual time and the
//!   shard index only — never from thread identity — so the worker count
//!   of the underlying [`substrate::pool`] is a pure throughput knob.
//! - Shard results are merged in canonical order (shard evidence in shard
//!   order, observations re-sorted by zID / probe key), so `render_tables`
//!   and every golden are bit-identical at any worker count.
//!
//! The partition itself is LPT greedy (largest country first onto the
//! lightest shard, ties broken by country code and shard index), which is
//! deterministic and keeps shard workloads balanced.

use crate::config::StudyConfig;
use crate::obs::{DnsDataset, HttpDataset, HttpsDataset, MonitorDataset};
use inetdb::CountryCode;
use netsim::SimRng;
use proxynet::World;
use substrate::pool;

/// Number of population shards the study plan splits each experiment into.
///
/// Fixed (not machine-derived): the shard plan is part of the campaign's
/// semantics, and the same plan must replay on any machine. Worker count —
/// how many shards run *concurrently* — is the throughput knob.
pub const SHARD_COUNT: usize = 8;

/// Distance between the session-number ranges of adjacent shards, so a
/// merged evidence log never shows two shards reusing one session id.
const SESSION_STRIDE: u64 = 1 << 32;

/// Execution options for [`crate::study::run_study_with`].
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker threads used to run shards (and analyses) concurrently.
    /// Output is byte-identical at any value; this only trades wall-clock
    /// for cores.
    pub workers: usize,
}

impl ExecOptions {
    /// Run with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        ExecOptions { workers }
    }
}

impl Default for ExecOptions {
    /// Default to the machine's available parallelism, capped at
    /// [`SHARD_COUNT`] (more workers than shards cannot help). Safe to
    /// machine-derive precisely because output is worker-count-invariant.
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(SHARD_COUNT))
            .unwrap_or(1);
        ExecOptions { workers }
    }
}

/// The sampling scope an experiment runs under: which slice of the
/// population it crawls, how its probe artifacts are namespaced, and where
/// its randomness comes from.
#[derive(Debug, Clone)]
pub(crate) struct ProbeScope {
    /// Reported per-country exit counts visible to this scope's sampler.
    pub counts: Vec<(CountryCode, usize)>,
    /// Prefix for per-probe DNS labels (empty for the unsharded path, so
    /// direct `run()` callers keep their exact historical probe names).
    pub tag: String,
    /// First session number the sampler hands out.
    pub session_base: u64,
    /// Shard index, when sharded.
    shard: Option<u64>,
}

impl ProbeScope {
    /// The whole-population scope — reproduces the unsharded experiments
    /// byte-for-byte.
    pub fn full(world: &World) -> Self {
        ProbeScope {
            counts: world.reported_country_counts(),
            tag: String::new(),
            session_base: 1,
            shard: None,
        }
    }

    /// The scope for shard `index` covering `counts`.
    pub fn shard(index: usize, counts: Vec<(CountryCode, usize)>) -> Self {
        ProbeScope {
            counts,
            tag: format!("s{index}-"),
            session_base: 1 + index as u64 * SESSION_STRIDE,
            shard: Some(index as u64),
        }
    }

    /// Derive an RNG for this scope from virtual time and an experiment
    /// salt. Unsharded scopes get the experiment's historical stream;
    /// shards get an independent label-fork of it. Thread identity never
    /// enters the derivation.
    pub fn rng(&self, t0_millis: u64, salt: u64) -> SimRng {
        let rng = SimRng::new(t0_millis ^ salt);
        match self.shard {
            Some(k) => rng.fork_indexed("shard", k),
            None => rng,
        }
    }
}

/// Partition the reported per-country counts into at most `shards` groups
/// with balanced total weight (LPT greedy). Deterministic: countries are
/// considered largest-first with code tie-breaks, and land on the lightest
/// shard (lowest index on ties). Zero-count countries are dropped; the
/// result has no empty shards.
///
/// # Panics
/// Panics if no country reports any exit nodes (same contract as
/// [`crate::crawl::Sampler::new`]).
pub(crate) fn plan_shards(
    counts: &[(CountryCode, usize)],
    shards: usize,
) -> Vec<Vec<(CountryCode, usize)>> {
    let mut nonzero: Vec<(CountryCode, usize)> =
        counts.iter().filter(|(_, n)| *n > 0).copied().collect();
    assert!(!nonzero.is_empty(), "no exit nodes reported anywhere");
    // Largest first; ties in canonical country order.
    nonzero.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let k = shards.min(nonzero.len());
    let mut plans: Vec<Vec<(CountryCode, usize)>> = vec![Vec::new(); k];
    let mut weights = vec![0usize; k];
    for (cc, n) in nonzero {
        let lightest = weights
            .iter()
            .enumerate()
            .min_by_key(|(i, w)| (**w, *i))
            .map(|(i, _)| i)
            .expect("k >= 1");
        plans[lightest].push((cc, n));
        weights[lightest] += n;
    }
    // Within a shard, canonical country order (the Sampler's cumulative
    // weight table is order-sensitive).
    for plan in &mut plans {
        plan.sort();
    }
    plans
}

/// One unit of shard work: shard index, its country plan, its world clone.
type ShardTask = (usize, Vec<(CountryCode, usize)>, World);

/// Run one experiment across the shard plan, merging evidence back into
/// the main world in shard order. `run_shard` receives the shard's private
/// world clone and scope; it must not touch anything else.
// tft-lint: hot-root — shard bodies: every per-probe loop runs inside this
pub(crate) fn run_experiment<D, F>(world: &mut World, workers: usize, run_shard: F) -> Vec<D>
where
    D: Send,
    F: Fn(&mut World, ProbeScope) -> D + Sync,
{
    let plans = plan_shards(&world.reported_country_counts(), SHARD_COUNT);
    let mark = world.evidence_mark();
    let tasks: Vec<ShardTask> = plans
        .into_iter()
        .enumerate()
        .map(|(k, plan)| (k, plan, world.clone()))
        .collect();
    let finished = pool::par_map(workers, tasks, |(k, plan, mut shard_world)| {
        let scope = ProbeScope::shard(k, plan);
        let data = run_shard(&mut shard_world, scope);
        (data, shard_world)
    });
    let mut datasets = Vec::with_capacity(finished.len());
    for (data, shard_world) in finished {
        world.absorb_evidence(&shard_world, &mark);
        datasets.push(data);
    }
    datasets
}

/// Merge per-shard DNS datasets: counters sum, observations re-sorted into
/// canonical zID order (shard populations are disjoint, so zIDs are unique
/// across parts; any cross-shard duplicate — impossible by construction
/// for DNS — would be dropped deterministically, keeping the lowest shard).
pub(crate) fn merge_dns(parts: Vec<DnsDataset>) -> DnsDataset {
    let mut merged = DnsDataset::default();
    for part in parts {
        merged.observations.extend(part.observations);
        merged.filtered_same_anycast += part.filtered_same_anycast;
        merged.duplicates += part.duplicates;
        merged.discarded += part.discarded;
        merged.samples_issued += part.samples_issued;
        merged.quality.merge(&part.quality);
    }
    merged.observations.sort_by(|a, b| a.zid.cmp(&b.zid));
    merged.observations.dedup_by(|a, b| a.zid == b.zid);
    merged
}

/// Merge per-shard HTTP datasets (canonical zID order). Cross-shard zID
/// duplicates are possible here — phase-2 revisits target an AS's home
/// country, which may lie outside the shard's partition — and are dropped
/// deterministically (stable sort keeps the lowest shard's observation).
pub(crate) fn merge_http(parts: Vec<HttpDataset>) -> HttpDataset {
    let mut merged = HttpDataset::default();
    for part in parts {
        merged.observations.extend(part.observations);
        merged.samples_issued += part.samples_issued;
        merged.skipped_quota += part.skipped_quota;
        merged.quality.merge(&part.quality);
    }
    merged.observations.sort_by(|a, b| a.zid.cmp(&b.zid));
    merged.observations.dedup_by(|a, b| a.zid == b.zid);
    merged
}

/// Merge per-shard HTTPS datasets (canonical zID order).
pub(crate) fn merge_https(parts: Vec<HttpsDataset>) -> HttpsDataset {
    let mut merged = HttpsDataset::default();
    for part in parts {
        merged.observations.extend(part.observations);
        merged.skipped_unranked += part.skipped_unranked;
        merged.samples_issued += part.samples_issued;
        merged.quality.merge(&part.quality);
    }
    merged.observations.sort_by(|a, b| a.zid.cmp(&b.zid));
    merged.observations.dedup_by(|a, b| a.zid == b.zid);
    merged
}

/// Merge per-shard monitoring datasets (canonical probe-domain order, the
/// same invariant the unsharded experiment maintains).
pub(crate) fn merge_monitor(parts: Vec<MonitorDataset>) -> MonitorDataset {
    let mut merged = MonitorDataset::default();
    for part in parts {
        merged.observations.extend(part.observations);
        merged.window_hours = part.window_hours;
        merged.samples_issued += part.samples_issued;
        merged.quality.merge(&part.quality);
    }
    merged.observations.sort_by(|a, b| a.domain.cmp(&b.domain));
    merged
}

/// Convenience: run a full sharded experiment and merge with `merge`.
pub(crate) fn sharded<D, F, M>(
    world: &mut World,
    cfg: &StudyConfig,
    workers: usize,
    run_shard: F,
    merge: M,
) -> D
where
    D: Send,
    F: Fn(&mut World, &StudyConfig, ProbeScope) -> D + Sync,
    M: FnOnce(Vec<D>) -> D,
{
    let parts = run_experiment(world, workers, |w, scope| run_shard(w, cfg, scope));
    merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    #[test]
    fn plan_is_deterministic_and_balanced() {
        let counts = vec![
            (cc("US"), 900),
            (cc("DE"), 300),
            (cc("MY"), 300),
            (cc("BR"), 200),
            (cc("IN"), 100),
        ];
        let a = plan_shards(&counts, 2);
        let b = plan_shards(&counts, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // LPT: US alone on one shard, everything else on the other.
        let weights: Vec<usize> = a
            .iter()
            .map(|p| p.iter().map(|(_, n)| n).sum::<usize>())
            .collect();
        assert_eq!(weights.iter().sum::<usize>(), 1800);
        assert!(weights.iter().all(|&w| w >= 900 / 2));
        // No shard is empty, no country dropped or duplicated.
        let mut all: Vec<_> = a.iter().flatten().collect();
        all.sort();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn fewer_countries_than_shards_yields_fewer_shards() {
        let counts = vec![(cc("XA"), 10), (cc("XB"), 5)];
        let plans = plan_shards(&counts, SHARD_COUNT);
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn zero_count_countries_are_dropped() {
        let counts = vec![(cc("US"), 10), (cc("KP"), 0)];
        let plans = plan_shards(&counts, 4);
        assert_eq!(plans, vec![vec![(cc("US"), 10)]]);
    }

    #[test]
    #[should_panic(expected = "no exit nodes")]
    fn all_zero_panics() {
        plan_shards(&[(cc("US"), 0)], 4);
    }

    #[test]
    fn scope_rngs_are_shard_stable() {
        let a = ProbeScope::shard(3, vec![(cc("US"), 1)]);
        let b = ProbeScope::shard(3, vec![(cc("US"), 1)]);
        let mut ra = a.rng(1234, 0xD45);
        let mut rb = b.rng(1234, 0xD45);
        use netsim::rng::RngExt;
        assert_eq!(
            ra.random_range(0..u64::MAX),
            rb.random_range(0..u64::MAX),
            "same shard, same stream"
        );
        let mut rc = ProbeScope::shard(4, vec![(cc("US"), 1)]).rng(1234, 0xD45);
        assert_ne!(
            ra.random_range(0..u64::MAX),
            rc.random_range(0..u64::MAX),
            "different shards, independent streams"
        );
    }

    #[test]
    fn session_bases_are_disjoint() {
        let a = ProbeScope::shard(0, vec![(cc("US"), 1)]);
        let b = ProbeScope::shard(1, vec![(cc("US"), 1)]);
        assert!(b.session_base - a.session_base >= SESSION_STRIDE);
    }
}
