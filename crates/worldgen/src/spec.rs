//! Declarative world specifications.
//!
//! A [`WorldSpec`] describes a population — countries, ISPs, violators —
//! with counts at **paper scale**; the builder multiplies by
//! [`WorldSpec::scale`]. Specs are plain JSON-able data (via `substrate`'s
//! `ToJson`/`FromJson`) so scenarios can be exported, tweaked, and replayed.

use substrate::{json_enum, json_struct};

/// A full world description.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// Master determinism seed.
    pub seed: u64,
    /// Population multiplier applied to every paper-scale count.
    pub scale: f64,
    /// Apex of the measurement study's authoritative zone.
    pub probe_apex: String,
    /// Country populations.
    pub countries: Vec<CountrySpec>,
    /// The public-resolver ecosystem.
    pub public_resolvers: PublicResolverSpec,
    /// Globally-assigned end-host software rosters.
    pub endhost: EndhostSpec,
    /// Content-monitoring entities.
    pub monitors: Vec<MonitorSpec>,
    /// HTTPS site population.
    pub sites: SiteSpec,
    /// Scripted fault campaign applied to exit-link traffic (empty = no
    /// faults; specs predating chaos campaigns decode unchanged).
    pub campaign: Vec<FaultRuleSpec>,
}

json_struct!(WorldSpec {
    seed,
    scale,
    probe_apex,
    countries,
    public_resolvers,
    endhost,
    monitors,
    sites,
    campaign: Vec::new(),
});

/// One scripted fault rule, flat and JSON-able; the builder converts the
/// spec's list into a [`netsim::FaultCampaign`]. Scope fields are
/// conjunctive (`country` AND `asn`), `None` meaning "any"; the window is
/// half-open `[start_s, end_s)` in virtual seconds. Exactly one of the
/// behaviour groups should be set: `outage`, the flap phases, or the
/// probabilistic chances.
#[derive(Debug, Clone, Default)]
pub struct FaultRuleSpec {
    /// Restrict to one country (ISO code).
    pub country: Option<String>,
    /// Restrict to one ISP ASN.
    pub asn: Option<u32>,
    /// Window start in virtual seconds from the epoch (default 0).
    pub start_s: Option<u64>,
    /// Window end (exclusive) in virtual seconds (default: never ends).
    pub end_s: Option<u64>,
    /// Per-message drop probability.
    pub drop_chance: f64,
    /// Per-message payload-corruption probability.
    pub corrupt_chance: f64,
    /// Per-message payload-truncation probability.
    pub truncate_chance: f64,
    /// Per-message stall probability (the exchange hangs until the
    /// request deadline).
    pub stall_chance: f64,
    /// Per-message latency-spike probability.
    pub delay_chance: f64,
    /// Latency-spike magnitude in milliseconds.
    pub delay_spike_ms: u64,
    /// Hard outage while active (every matching message is dropped).
    pub outage: bool,
    /// Flapping link: online phase length in seconds.
    pub flap_up_s: u64,
    /// Flapping link: offline phase length in seconds (0 = no flap).
    pub flap_down_s: u64,
}

json_struct!(FaultRuleSpec {
    country: None,
    asn: None,
    start_s: None,
    end_s: None,
    drop_chance: 0.0,
    corrupt_chance: 0.0,
    truncate_chance: 0.0,
    stall_chance: 0.0,
    delay_chance: 0.0,
    delay_spike_ms: 0,
    outage: false,
    flap_up_s: 0,
    flap_down_s: 0,
});

impl FaultRuleSpec {
    /// A rule applying `corrupt`/`truncate` chances everywhere, always.
    pub fn corruption(corrupt_chance: f64, truncate_chance: f64) -> Self {
        FaultRuleSpec {
            corrupt_chance,
            truncate_chance,
            ..Default::default()
        }
    }

    /// A total outage for one country over `[start_s, end_s)`.
    pub fn regional_outage(country: &str, start_s: u64, end_s: u64) -> Self {
        FaultRuleSpec {
            country: Some(country.to_string()),
            start_s: Some(start_s),
            end_s: Some(end_s),
            outage: true,
            ..Default::default()
        }
    }

    /// A flapping-link profile for one ISP's ASN.
    pub fn flapping_isp(asn: u32, up_s: u64, down_s: u64) -> Self {
        FaultRuleSpec {
            asn: Some(asn),
            flap_up_s: up_s,
            flap_down_s: down_s,
            ..Default::default()
        }
    }
}

/// One country's population.
#[derive(Debug, Clone)]
pub struct CountrySpec {
    /// ISO code.
    pub code: String,
    /// Whether Alexa-like rankings exist (the HTTPS experiment can only
    /// cover ranked countries — the paper had 115 of 172).
    pub has_rankings: bool,
    /// ISPs operating in the country.
    pub isps: Vec<IspSpec>,
}

json_struct!(CountrySpec {
    code,
    has_rankings,
    isps
});

/// One ISP.
#[derive(Debug, Clone)]
pub struct IspSpec {
    /// Organization name (CAIDA-style).
    pub name: String,
    /// Explicit ASNs to register (Table 7 names real ASNs); empty = auto.
    pub explicit_asns: Vec<u32>,
    /// Additional auto-numbered ASes.
    pub auto_as_count: u32,
    /// Exit nodes in this ISP, at paper scale.
    pub nodes: u64,
    /// Number of ISP resolver servers, at paper scale.
    pub resolver_servers: u64,
    /// The ISP's resolvers hijack NXDOMAIN.
    pub resolver_hijack: bool,
    /// Landing/assist domain embedded in hijack pages
    /// (e.g. `searchassist.verizon.com`).
    pub landing_domain: Option<String>,
    /// Hijack pages use the shared vendor JavaScript (the five-ISP family).
    pub shared_js: bool,
    /// A transparent in-path DNS proxy also hijacks users of external
    /// resolvers (the Table 5 signal).
    pub transparent_proxy: bool,
    /// Fraction of nodes configured with Google DNS.
    pub google_dns_share: f64,
    /// Fraction of nodes configured with a public resolver.
    pub public_dns_share: f64,
    /// In-path image transcoder (mobile carriers).
    pub transcoder: Option<TranscoderSpec>,
    /// In-path HTML filter meta-tag (NetSpark-style appliance).
    pub isp_injector_meta: Option<String>,
    /// ISP-level content monitoring: (entity name, share of nodes).
    pub monitored_share: Option<(String, f64)>,
    /// Per-request failure probability of this ISP's residential links.
    pub flakiness: f64,
    /// An in-path middlebox strips STARTTLS from SMTP sessions (the
    /// future-work extension's violation).
    pub smtp_strip: bool,
}

json_struct!(IspSpec {
    name,
    explicit_asns,
    auto_as_count,
    nodes,
    resolver_servers,
    resolver_hijack,
    landing_domain,
    shared_js,
    transparent_proxy,
    google_dns_share,
    public_dns_share,
    transcoder,
    isp_injector_meta,
    monitored_share,
    flakiness,
    smtp_strip: false,
});

impl IspSpec {
    /// A clean ISP with `nodes` exit nodes and sensible defaults.
    pub fn clean(name: &str, nodes: u64) -> IspSpec {
        IspSpec {
            name: name.to_string(),
            explicit_asns: Vec::new(),
            auto_as_count: 1,
            nodes,
            resolver_servers: 2,
            resolver_hijack: false,
            landing_domain: None,
            shared_js: false,
            transparent_proxy: false,
            google_dns_share: 0.05,
            public_dns_share: 0.03,
            transcoder: None,
            isp_injector_meta: None,
            monitored_share: None,
            flakiness: 0.01,
            smtp_strip: false,
        }
    }
}

/// Mobile-carrier image transcoding.
#[derive(Debug, Clone)]
pub struct TranscoderSpec {
    /// Operating points (output/input size ratios).
    pub ratios: Vec<f64>,
    /// Share of the ISP's nodes that are tethered behind the transcoder
    /// (Table 7's "Ratio" column; non-100% values may reflect subscriber
    /// plans).
    pub tethered_share: f64,
}

json_struct!(TranscoderSpec {
    ratios,
    tethered_share
});

/// The public-resolver ecosystem (§4.3.2).
#[derive(Debug, Clone)]
pub struct PublicResolverSpec {
    /// Clean public resolvers, at paper scale.
    pub clean_servers: u64,
    /// Named public services.
    pub services: Vec<PublicServiceSpec>,
    /// Fraction of public-resolver users pointed at hijacking services
    /// (tunes the public share of hijack attribution).
    pub hijacking_service_weight: f64,
}

json_struct!(PublicResolverSpec {
    clean_servers,
    services,
    hijacking_service_weight,
});

/// One public resolver service.
#[derive(Debug, Clone)]
pub struct PublicServiceSpec {
    /// Service name ("Comodo DNS", "LookSafe", …).
    pub name: String,
    /// Number of server addresses, at paper scale.
    pub servers: u64,
    /// Whether the service hijacks NXDOMAIN.
    pub hijack: bool,
    /// Landing domain for hijack pages.
    pub landing_domain: Option<String>,
}

json_struct!(PublicServiceSpec {
    name,
    servers,
    hijack,
    landing_domain,
});

/// Globally-assigned end-host software.
#[derive(Debug, Clone, Default)]
pub struct EndhostSpec {
    /// End-host NXDOMAIN hijackers (Norton-style search assist, malware).
    pub dns_hijackers: Vec<EndhostDnsSpec>,
    /// HTML-injecting malware (Table 6).
    pub html_injectors: Vec<HtmlInjectorSpec>,
    /// TLS interceptors (Table 8).
    pub tls_interceptors: Vec<TlsInterceptorSpec>,
    /// Monitoring software attachments: (entity name, nodes at paper scale,
    /// country spread limit).
    pub monitor_attach: Vec<MonitorAttachSpec>,
    /// Object blockers producing the JS/CSS "bandwidth exceeded" pages
    /// (§5.2): (blocks html, blocks js, blocks css, nodes at paper scale).
    pub blockers: Vec<BlockerSpec>,
}

json_struct!(EndhostSpec {
    dns_hijackers,
    html_injectors,
    tls_interceptors,
    monitor_attach,
    blockers,
});

/// An end-host NXDOMAIN hijacker roster entry.
#[derive(Debug, Clone)]
pub struct EndhostDnsSpec {
    /// Product/malware name.
    pub name: String,
    /// Landing domain embedded in its pages.
    pub landing_domain: String,
    /// Affected nodes, paper scale.
    pub nodes: u64,
    /// Only infect nodes configured with Google DNS (the Table 5
    /// population).
    pub google_dns_users_only: bool,
}

json_struct!(EndhostDnsSpec {
    name,
    landing_domain,
    nodes,
    google_dns_users_only,
});

/// A Table 6 injector roster entry.
#[derive(Debug, Clone)]
pub struct HtmlInjectorSpec {
    /// The signature string.
    pub signature: String,
    /// True for `<script src=…>` URLs, false for inline keywords.
    pub is_script_url: bool,
    /// Affected nodes, paper scale.
    pub nodes: u64,
    /// Restrict infections to this country (Table 6's 1-country rows).
    pub country: Option<String>,
    /// Injected payload bytes.
    pub payload_bytes: usize,
    /// Ads loaded (flavor).
    pub ad_count: usize,
}

json_struct!(HtmlInjectorSpec {
    signature,
    is_script_url,
    nodes,
    country,
    payload_bytes,
    ad_count,
});

/// A Table 8 interceptor roster entry.
#[derive(Debug, Clone)]
pub struct TlsInterceptorSpec {
    /// Issuer common name stamped on spoofed certificates.
    pub issuer: String,
    /// Affected nodes, paper scale.
    pub nodes: u64,
    /// Reuses one key per host.
    pub shared_key: bool,
    /// Policy for originally-invalid certificates.
    pub invalid: InvalidPolicySpec,
    /// Copies fields from the original certificate (Cloudguard).
    pub copy_fields: bool,
    /// Per-site interception probability (1.0 = all sites).
    pub per_site_fraction: f64,
    /// Restrict infections to this country (Cloudguard: Russian ISPs).
    pub country: Option<String>,
}

json_struct!(TlsInterceptorSpec {
    issuer,
    nodes,
    shared_key,
    invalid,
    copy_fields,
    per_site_fraction,
    country,
});

/// Serde-friendly invalid-cert policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidPolicySpec {
    /// Re-sign with the trusted product root (masks invalidity).
    MaskWithTrustedRoot,
    /// Re-sign with a separate untrusted root (browser still warns).
    AltUntrustedRoot,
    /// Leave invalid certificates untouched.
    PassThrough,
}

json_enum!(InvalidPolicySpec {
    MaskWithTrustedRoot,
    AltUntrustedRoot,
    PassThrough,
});

/// Monitoring-software attachment.
#[derive(Debug, Clone)]
pub struct MonitorAttachSpec {
    /// Entity name (must match a [`MonitorSpec`]).
    pub entity: String,
    /// Nodes to attach, paper scale.
    pub nodes: u64,
    /// Restrict to this many countries (Table 9's country counts).
    pub country_limit: Option<usize>,
    /// Nodes also route through the entity's VPN egress (AnchorFree).
    pub vpn: bool,
}

json_struct!(MonitorAttachSpec {
    entity,
    nodes,
    country_limit,
    vpn,
});

/// JS/CSS/HTML blocker roster entry.
#[derive(Debug, Clone, Copy)]
pub struct BlockerSpec {
    /// Replace HTML with a block page.
    pub html: bool,
    /// Replace JavaScript.
    pub js: bool,
    /// Replace CSS.
    pub css: bool,
    /// Affected nodes, paper scale.
    pub nodes: u64,
}

json_struct!(BlockerSpec {
    html,
    js,
    css,
    nodes
});

/// A content-monitoring entity (Table 9).
#[derive(Debug, Clone)]
pub struct MonitorSpec {
    /// Entity name.
    pub name: String,
    /// Country its infrastructure is registered in.
    pub home_country: String,
    /// Number of refetch source addresses, paper scale.
    pub source_ips: u64,
    /// Timing profile.
    pub profile: MonitorProfile,
    /// Second request always from one fixed address (AnchorFree).
    pub fixed_second_source: bool,
    /// User-Agent on refetches.
    pub user_agent: String,
}

json_struct!(MonitorSpec {
    name,
    home_country,
    source_ips,
    profile,
    fixed_second_source,
    user_agent,
});

/// Named timing profiles (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorProfile {
    /// Two log-uniform windows: 12–120 s, then 200–12,500 s.
    TrendMicro,
    /// ~30 s fixed, then within the next hour.
    TalkTalk,
    /// One refetch, 1–10 minutes.
    Commtouch,
    /// Two refetches under one second.
    AnchorFree,
    /// Fetch-before-allow (83% precede the user's request).
    Bluecoat,
    /// Exactly 30 s.
    Tiscali,
}

json_enum!(MonitorProfile {
    TrendMicro,
    TalkTalk,
    Commtouch,
    AnchorFree,
    Bluecoat,
    Tiscali,
});

/// HTTPS site population.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Popular sites per ranked country (the paper probes the top 20).
    pub sites_per_country: usize,
    /// Mail (MX) hosts per ranked country, for the SMTP extension.
    pub mail_hosts_per_country: usize,
    /// University domains (the paper's 10 PC-member universities).
    pub universities: usize,
    /// Roots in the public store (OS X 10.11 had 187).
    pub root_store_size: usize,
}

json_struct!(SiteSpec {
    sites_per_country,
    mail_hosts_per_country: 1,
    universities,
    root_store_size,
});

impl Default for SiteSpec {
    fn default() -> Self {
        SiteSpec {
            sites_per_country: 20,
            mail_hosts_per_country: 1,
            universities: 10,
            root_store_size: 187,
        }
    }
}

impl WorldSpec {
    /// Scale a paper-scale count: proportional, but groups that exist at
    /// paper scale never vanish entirely (minimum 2 so that ratios within a
    /// group remain meaningful).
    pub fn scaled(&self, paper_count: u64) -> u64 {
        if paper_count == 0 {
            return 0;
        }
        (((paper_count as f64) * self.scale).round() as u64).max(2)
    }

    /// Scale a count that may legitimately drop to zero or one (e.g. server
    /// counts).
    pub fn scaled_min1(&self, paper_count: u64) -> u64 {
        if paper_count == 0 {
            return 0;
        }
        (((paper_count as f64) * self.scale).round() as u64).max(1)
    }

    /// Total exit nodes at paper scale.
    pub fn paper_node_total(&self) -> u64 {
        self.countries
            .iter()
            .flat_map(|c| c.isps.iter())
            .map(|i| i.nodes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorldSpec {
        WorldSpec {
            seed: 1,
            scale: 0.1,
            probe_apex: "tft-probe.example".into(),
            countries: vec![CountrySpec {
                code: "US".into(),
                has_rankings: true,
                isps: vec![IspSpec::clean("TestNet", 1000)],
            }],
            public_resolvers: PublicResolverSpec {
                clean_servers: 10,
                services: vec![],
                hijacking_service_weight: 0.0,
            },
            endhost: EndhostSpec::default(),
            monitors: vec![],
            sites: SiteSpec::default(),
            campaign: Vec::new(),
        }
    }

    #[test]
    fn scaling_preserves_groups() {
        let spec = tiny_spec();
        assert_eq!(spec.scaled(1000), 100);
        assert_eq!(spec.scaled(5), 2, "groups never vanish");
        assert_eq!(spec.scaled(0), 0);
        assert_eq!(spec.scaled_min1(5), 1);
    }

    #[test]
    fn paper_total_sums_isps() {
        assert_eq!(tiny_spec().paper_node_total(), 1000);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        use substrate::json::{from_str, to_string_pretty, FromJson, ToJson};
        let spec = tiny_spec();
        let doc = to_string_pretty(&spec);
        let back: WorldSpec = from_str(&doc).expect("re-parse");
        // Specs don't derive PartialEq (f64 fields); compare re-rendering.
        assert_eq!(to_string_pretty(&back), doc);
        // Trait bounds hold for the root type.
        fn assert_json<T: ToJson + FromJson>() {}
        assert_json::<WorldSpec>();
    }

    #[test]
    fn missing_defaulted_fields_fall_back() {
        use substrate::json::FromJson;
        // A SiteSpec without `mail_hosts_per_country` predates the SMTP
        // extension; it must decode with the default of 1.
        let doc = r#"{"sites_per_country": 20, "universities": 10, "root_store_size": 187}"#;
        let v = substrate::json::parse(doc).unwrap();
        let site = SiteSpec::from_json(&v).expect("decode");
        assert_eq!(site.mail_hosts_per_country, 1);

        // An IspSpec without `smtp_strip` decodes as false.
        let isp = IspSpec::clean("X", 10);
        let mut fields = match substrate::json::ToJson::to_json(&isp) {
            substrate::json::Json::Obj(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        fields.retain(|(k, _)| k != "smtp_strip");
        let decoded = IspSpec::from_json(&substrate::json::Json::Obj(fields)).expect("decode");
        assert!(!decoded.smtp_strip);
    }
}
