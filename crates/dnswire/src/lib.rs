//! # dnswire — DNS implemented from scratch
//!
//! The DNS plane of the reproduction:
//!
//! - [`name`]: domain names with RFC 1035 limits and case-insensitive
//!   comparison;
//! - [`wire`]: full message encode/decode with name compression and
//!   pointer-loop protection;
//! - [`zone`]: authoritative zone semantics — the NXDOMAIN / NODATA
//!   distinction, wildcards, CNAME chasing;
//! - [`server`]: the study's authoritative server with **source-conditional
//!   answers** (the d₁/d₂ trick of §4.1) and the query log from which exit
//!   nodes' resolvers are identified.
//!
//! The paper's DNS experiment never sees the response an exit node receives;
//! it infers hijacking from (a) what arrives at this server and (b) what
//! content comes back through the proxy. This crate supplies both the wire
//! mechanics and the observables for that inference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod name;
pub mod server;
pub mod wire;
pub mod zone;

pub use cache::{CachedAnswer, DnsCache};
pub use name::{DnsName, NameError};
pub use server::{AnswerOverride, AuthServer, QueryLogEntry};
pub use wire::{
    decode, encode, encode_into, Flags, Message, QType, Question, RData, Rcode, Record, WireError,
};
pub use zone::{Zone, ZoneAnswer};
