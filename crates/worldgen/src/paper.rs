//! The calibrated default scenario.
//!
//! [`paper_spec`] builds a [`WorldSpec`] whose planted population mirrors
//! the paper's tables: the Table 3 countries at their hijack ratios, the
//! Table 4 ISP resolvers, the Table 5 transparent proxies and end-host
//! hijackers, the Table 6 injectors, the Table 7 mobile transcoders (with
//! their real ASNs), the Table 8 TLS interceptor roster, and the Table 9
//! monitoring entities with Figure 5's timing profiles.
//!
//! Counts are at paper scale; pass `scale` to shrink the population
//! proportionally (0.08 ≈ 52k nodes builds in seconds and keeps every
//! group above analysis thresholds).

use crate::spec::*;

/// Default deterministic seed for the calibrated world.
pub const DEFAULT_SEED: u64 = 0x7F7_2016;

/// The measurement study's probe zone apex.
pub const PROBE_APEX: &str = "tft-probe.example";

fn isp(name: &str, nodes: u64) -> IspSpec {
    IspSpec::clean(name, nodes)
}

/// An ISP whose resolvers hijack NXDOMAIN.
#[allow(clippy::too_many_arguments)]
fn hijack_isp(
    name: &str,
    nodes: u64,
    servers: u64,
    landing: &str,
    shared_js: bool,
    transparent: bool,
    google_share: f64,
) -> IspSpec {
    IspSpec {
        resolver_servers: servers,
        resolver_hijack: true,
        landing_domain: Some(landing.to_string()),
        shared_js,
        transparent_proxy: transparent,
        google_dns_share: google_share,
        public_dns_share: 0.02,
        ..IspSpec::clean(name, nodes)
    }
}

/// A mobile carrier with an in-path transcoder on a real ASN.
fn mobile_isp(name: &str, asn: u32, nodes: u64, ratios: &[f64], tethered: f64) -> IspSpec {
    IspSpec {
        explicit_asns: vec![asn],
        auto_as_count: 0,
        transcoder: Some(TranscoderSpec {
            ratios: ratios.to_vec(),
            tethered_share: tethered,
        }),
        ..IspSpec::clean(name, nodes)
    }
}

fn country(code: &str, has_rankings: bool, isps: Vec<IspSpec>) -> CountrySpec {
    CountrySpec {
        code: code.to_string(),
        has_rankings,
        isps,
    }
}

/// Build the calibrated paper scenario at the given scale.
pub fn paper_spec(scale: f64, seed: u64) -> WorldSpec {
    let mut countries = vec![
        // ---- Table 3 countries -------------------------------------------
        country(
            "MY",
            true,
            vec![
                hijack_isp(
                    "TMnet",
                    3_600,
                    8,
                    "midascdn.nervesis.com",
                    false,
                    true,
                    0.019,
                ),
                isp("Maxis Broadband", 3_383),
            ],
        ),
        country(
            "ID",
            true,
            vec![
                IspSpec {
                    smtp_strip: true,
                    ..hijack_isp(
                        "Telkom Indonesia",
                        3_100,
                        12,
                        "v3.mercusuar.uzone.id",
                        false,
                        true,
                        0.017,
                    )
                },
                isp("Indosat Ooredoo", 5_468),
            ],
        ),
        country(
            "CN",
            false,
            vec![
                hijack_isp(
                    "ChinaNet Backbone",
                    240,
                    4,
                    "assist.chinanet.example",
                    false,
                    false,
                    0.0,
                ),
                isp("China Unicom", 431),
            ],
        ),
        country(
            "GB",
            true,
            vec![
                IspSpec {
                    monitored_share: Some(("TalkTalk".to_string(), 0.452)),
                    ..hijack_isp(
                        "Talk Talk",
                        3_900,
                        46,
                        "error.talktalk.co.uk",
                        true,
                        true,
                        0.012,
                    )
                },
                hijack_isp(
                    "BT Internet",
                    500,
                    6,
                    "www.webaddresshelp.bt.com",
                    true,
                    true,
                    0.146,
                ),
                hijack_isp(
                    "Breezenet UK",
                    5_400,
                    12,
                    "assist.breezenet.example",
                    false,
                    false,
                    0.05,
                ),
                IspSpec {
                    monitored_share: Some(("Tiscali U.K.".to_string(), 0.114)),
                    ..isp("Tiscali UK", 3_200)
                },
                mobile_isp("Telefonica UK", 29_180, 51, &[0.47], 1.0),
                mobile_isp("Vodafone UK", 25_135, 54, &[0.54], 0.83),
                isp("Virgin Media", 24_051),
            ],
        ),
        country(
            "DE",
            true,
            vec![
                hijack_isp(
                    "Deutsche Telekom AG",
                    1_450,
                    8,
                    "navigationshilfe.t-online.de",
                    false,
                    true,
                    0.055,
                ),
                hijack_isp(
                    "Kabel Deutschland",
                    3_300,
                    10,
                    "assist.kabel-de.example",
                    false,
                    false,
                    0.05,
                ),
                isp("1und1 Internet", 14_326),
            ],
        ),
        country(
            "US",
            true,
            vec![
                hijack_isp("AT&T", 610, 37, "dnserrorassist.att.net", false, true, 0.05),
                hijack_isp(
                    "Cable One",
                    120,
                    4,
                    "assist.cableone.example",
                    false,
                    false,
                    0.05,
                ),
                hijack_isp(
                    "Cox Communications",
                    1_950,
                    63,
                    "finder.cox.net",
                    true,
                    true,
                    0.009,
                ),
                hijack_isp(
                    "Mediacom Cable",
                    240,
                    6,
                    "search.mediacomcable.com",
                    false,
                    true,
                    0.03,
                ),
                hijack_isp(
                    "Suddenlink",
                    110,
                    9,
                    "assist.suddenlink.example",
                    false,
                    false,
                    0.05,
                ),
                hijack_isp(
                    "Verizon",
                    2_290,
                    98,
                    "searchassist.verizon.com",
                    true,
                    true,
                    0.013,
                ),
                hijack_isp(
                    "WideOpenWest",
                    45,
                    1,
                    "assist.wideopenwest.example",
                    false,
                    false,
                    0.05,
                ),
                hijack_isp(
                    "Frontier Communications",
                    1_300,
                    11,
                    "assist.frontier.example",
                    false,
                    false,
                    0.05,
                ),
                isp("Comcast", 26_733),
            ],
        ),
        country(
            "IN",
            true,
            vec![
                hijack_isp(
                    "Airtel Broadband",
                    800,
                    9,
                    "airtelforum.com",
                    false,
                    true,
                    0.018,
                ),
                hijack_isp("BSNL", 80, 2, "assist.bsnl.example", false, false, 0.05),
                hijack_isp(
                    "Ntl. Int. Backbone",
                    270,
                    8,
                    "assist.nib.example",
                    false,
                    false,
                    0.05,
                ),
                isp("Reliance Jio", 5_718),
            ],
        ),
        country(
            "BR",
            true,
            vec![
                hijack_isp(
                    "Oi Fixo",
                    2_780,
                    21,
                    "dnserros.oi.com.br",
                    true,
                    true,
                    0.015,
                ),
                hijack_isp("CTBC", 315, 4, "nodomain.ctbc.com.br", false, true, 0.022),
                hijack_isp(
                    "NET Virtua",
                    1_000,
                    7,
                    "assist.netvirtua.example",
                    false,
                    false,
                    0.05,
                ),
                isp("Vivo", 20_203),
            ],
        ),
        country(
            "BJ",
            false,
            vec![
                IspSpec {
                    google_dns_share: 0.99,
                    public_dns_share: 0.0,
                    ..isp("OPT Benin", 250)
                },
                hijack_isp(
                    "Benin Telecom",
                    100,
                    2,
                    "assist.benintelecom.example",
                    false,
                    false,
                    0.02,
                ),
                isp("Isocel Telecom", 366),
            ],
        ),
        country(
            "JO",
            true,
            vec![
                hijack_isp(
                    "Orange Jordan",
                    85,
                    2,
                    "assist.orangejo.example",
                    false,
                    false,
                    0.02,
                ),
                isp("Zain Jordan", 1_032),
            ],
        ),
        // ---- Table 4 / Table 7 countries ---------------------------------
        country(
            "AR",
            true,
            vec![
                hijack_isp(
                    "Telefonica de Argentina",
                    300,
                    14,
                    "ayudaenlabusqueda.telefonica.com.ar",
                    false,
                    true,
                    0.053,
                ),
                isp("Claro Argentina", 4_700),
            ],
        ),
        country(
            "AU",
            true,
            vec![
                hijack_isp(
                    "Dodo Australia",
                    1_530,
                    21,
                    "google.dodo.com.au",
                    false,
                    true,
                    0.0085,
                ),
                isp("Telstra", 6_470),
            ],
        ),
        country(
            "ES",
            true,
            vec![
                hijack_isp("ONO", 80, 2, "assist.ono.example", false, false, 0.05),
                isp("Movistar", 11_920),
            ],
        ),
        country(
            "GR",
            true,
            vec![
                mobile_isp("Wind Hellas", 15_617, 30, &[0.53], 1.0),
                mobile_isp("Vodafone Greece", 12_361, 69, &[0.52], 0.48),
                isp("OTE", 3_901),
            ],
        ),
        country(
            "ZA",
            true,
            vec![
                mobile_isp("Vodacom", 29_975, 264, &[0.35, 0.62], 0.94),
                isp("MTN South Africa", 2_736),
            ],
        ),
        country(
            "EG",
            false,
            vec![
                mobile_isp("Vodafone Egypt", 36_935, 243, &[0.33, 0.58], 0.77),
                isp("TE Data", 3_757),
            ],
        ),
        country(
            "MA",
            false,
            vec![
                IspSpec {
                    smtp_strip: true,
                    ..mobile_isp("Meditelecom", 36_925, 384, &[0.34], 0.68)
                },
                isp("Maroc Telecom", 1_616),
            ],
        ),
        country(
            "TR",
            true,
            vec![
                mobile_isp("Turkcell", 16_135, 195, &[0.54], 0.68),
                mobile_isp("Vodafone Turkey", 15_897, 75, &[0.53], 0.56),
                isp("TTNet", 7_730),
            ],
        ),
        country(
            "TN",
            false,
            vec![
                mobile_isp("Orange Tunisia", 37_492, 993, &[0.34], 0.29),
                isp("Topnet", 507),
            ],
        ),
        country(
            "PH",
            true,
            vec![
                IspSpec {
                    smtp_strip: true,
                    ..mobile_isp("Globe Telecom", 132_199, 4_122, &[0.51], 0.14)
                },
                isp("PLDT", 4_878),
            ],
        ),
        country(
            "FR",
            true,
            vec![
                mobile_isp("Bouygues Telecom", 12_844, 1_845, &[0.53], 0.06),
                isp("Orange France", 18_155),
            ],
        ),
        country(
            "IL",
            true,
            vec![
                IspSpec {
                    explicit_asns: vec![42_925],
                    auto_as_count: 0,
                    isp_injector_meta: Some("NetsparkQuiltingResult".to_string()),
                    ..isp("Internet Rimon", 63)
                },
                isp("Bezeq International", 1_937),
            ],
        ),
        country(
            "RU",
            true,
            vec![isp("Rostelecom", 9_000), isp("MTS Russia", 6_000)],
        ),
    ];

    // ---- filler countries ------------------------------------------------
    // (code, nodes in thousands, has rankings). Half host a small hijacking
    // "assist" ISP so hijacking remains globally widespread, matching §4.2.
    const FILLER: [(&str, u64, bool); 40] = [
        ("IT", 25, true),
        ("CA", 18, true),
        ("MX", 14, true),
        ("NL", 16, true),
        ("PL", 22, true),
        ("SE", 12, true),
        ("NO", 8, false),
        ("FI", 7, true),
        ("DK", 9, true),
        ("PT", 10, true),
        ("CZ", 11, true),
        ("RO", 17, true),
        ("HU", 9, false),
        ("AT", 8, true),
        ("CH", 9, true),
        ("BE", 10, true),
        ("IE", 6, false),
        ("JP", 20, true),
        ("KR", 12, true),
        ("TW", 9, false),
        ("TH", 14, true),
        ("VN", 16, false),
        ("SG", 5, true),
        ("NZ", 4, true),
        ("AE", 7, false),
        ("SA", 11, true),
        ("NG", 9, false),
        ("KE", 5, false),
        ("GH", 3, false),
        ("UA", 18, true),
        ("KZ", 6, false),
        ("CL", 9, true),
        ("CO", 12, true),
        ("PE", 8, false),
        ("VE", 7, false),
        ("EC", 4, false),
        ("BG", 8, true),
        ("RS", 6, false),
        ("HR", 4, false),
        ("SK", 5, true),
    ];
    for (i, (code, knodes, ranked)) in FILLER.iter().enumerate() {
        let n = knodes * 1_000;
        let mut isps = vec![
            isp(&format!("Telecom {code}"), n * 45 / 100),
            isp(&format!("Net {code}"), n * 30 / 100),
            isp(&format!("Broadband {code}"), n * 15 / 100),
        ];
        // African filler ISPs lean on Google DNS (cf. footnote 9 and the
        // African-web study the paper cites).
        let wireless = if matches!(*code, "NG" | "KE" | "GH") {
            IspSpec {
                google_dns_share: 0.85,
                ..isp(&format!("Wireless {code}"), n * 10 / 100)
            }
        } else {
            isp(&format!("Wireless {code}"), n * 10 / 100)
        };
        isps.push(wireless);
        if i % 2 == 0 {
            isps.push(hijack_isp(
                &format!("Assist ISP {code}"),
                (n * 15 / 1000).max(20),
                2,
                &format!("assist.{}.example", code.to_ascii_lowercase()),
                false,
                false,
                0.02,
            ));
        }
        countries.push(country(code, *ranked, isps));
    }

    WorldSpec {
        seed,
        scale,
        probe_apex: PROBE_APEX.to_string(),
        countries,
        public_resolvers: PublicResolverSpec {
            clean_servers: 1_089,
            services: vec![
                PublicServiceSpec {
                    name: "Comodo DNS".into(),
                    servers: 9,
                    hijack: true,
                    landing_domain: Some("comododns-assist.example".into()),
                },
                PublicServiceSpec {
                    name: "UltraDNS".into(),
                    servers: 4,
                    hijack: true,
                    landing_domain: Some("search.ultradns.example".into()),
                },
                PublicServiceSpec {
                    name: "LookSafe".into(),
                    servers: 2,
                    hijack: true,
                    landing_domain: Some("looksafe-search.example".into()),
                },
                PublicServiceSpec {
                    name: "Level 3".into(),
                    servers: 3,
                    hijack: true,
                    landing_domain: Some("assist.level3.example".into()),
                },
                PublicServiceSpec {
                    name: "Unidentified DNS Service".into(),
                    servers: 3,
                    hijack: true,
                    landing_domain: Some("assist-unknown.example".into()),
                },
            ],
            hijacking_service_weight: 0.17,
        },
        endhost: EndhostSpec {
            dns_hijackers: vec![
                EndhostDnsSpec {
                    name: "Norton ConnectSafe".into(),
                    landing_domain: "nortonsafe.search.ask.com".into(),
                    nodes: 25 * 15,
                    google_dns_users_only: true,
                },
                EndhostDnsSpec {
                    name: "Comodo SecureDNS".into(),
                    landing_domain: "securedns.comodo.com".into(),
                    nodes: 9 * 15,
                    google_dns_users_only: true,
                },
            ],
            html_injectors: vec![
                HtmlInjectorSpec {
                    signature: "d36mw5gp02ykm5.cloudfront.net".into(),
                    is_script_url: true,
                    nodes: 3_800,
                    country: None,
                    payload_bytes: 30 * 1024,
                    ad_count: 25,
                },
                HtmlInjectorSpec {
                    signature: "msmdzbsyrw.org".into(),
                    is_script_url: true,
                    nodes: 1_475,
                    country: None,
                    payload_bytes: 12 * 1024,
                    ad_count: 12,
                },
                HtmlInjectorSpec {
                    signature: "pgjs.me".into(),
                    is_script_url: true,
                    nodes: 243,
                    country: Some("RU".into()),
                    payload_bytes: 5 * 1024,
                    ad_count: 6,
                },
                HtmlInjectorSpec {
                    signature: "jswrite.com/script1.js".into(),
                    is_script_url: true,
                    nodes: 228,
                    country: None,
                    payload_bytes: 8 * 1024,
                    ad_count: 9,
                },
                HtmlInjectorSpec {
                    signature: "var oiasudoj;".into(),
                    is_script_url: false,
                    nodes: 167,
                    country: Some("BR".into()),
                    payload_bytes: 23 * 1024,
                    ad_count: 170,
                },
                HtmlInjectorSpec {
                    signature: "AdTaily_Widget_Container".into(),
                    is_script_url: false,
                    nodes: 167,
                    country: None,
                    payload_bytes: 335 * 1024,
                    ad_count: 30,
                },
                HtmlInjectorSpec {
                    signature: "stats-counter-tracker.example".into(),
                    is_script_url: true,
                    nodes: 800,
                    country: None,
                    payload_bytes: 4 * 1024,
                    ad_count: 3,
                },
                HtmlInjectorSpec {
                    signature: "adsrv-delivery.example".into(),
                    is_script_url: true,
                    nodes: 600,
                    country: None,
                    payload_bytes: 6 * 1024,
                    ad_count: 8,
                },
            ],
            tls_interceptors: vec![
                TlsInterceptorSpec {
                    issuer: "Avast Web/Mail Shield Root".into(),
                    nodes: 3_283,
                    shared_key: false,
                    invalid: InvalidPolicySpec::AltUntrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 0.95,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "AVG Technologies".into(),
                    nodes: 247,
                    shared_key: true,
                    invalid: InvalidPolicySpec::AltUntrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "BitDefender Personal CA".into(),
                    nodes: 241,
                    shared_key: true,
                    invalid: InvalidPolicySpec::AltUntrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "ESET SSL Filter CA".into(),
                    nodes: 217,
                    shared_key: true,
                    invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "Kaspersky Anti-Virus Personal Root".into(),
                    nodes: 68,
                    shared_key: true,
                    invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "OpenDNS Root Certificate Authority".into(),
                    nodes: 64,
                    shared_key: true,
                    invalid: InvalidPolicySpec::PassThrough,
                    copy_fields: false,
                    per_site_fraction: 0.25,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "Cyberoam SSL CA".into(),
                    nodes: 35,
                    shared_key: true,
                    invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "Sample CA 2".into(),
                    nodes: 29,
                    shared_key: true,
                    invalid: InvalidPolicySpec::PassThrough,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "Fortigate CA".into(),
                    nodes: 17,
                    shared_key: true,
                    invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "".into(),
                    nodes: 14,
                    shared_key: true,
                    invalid: InvalidPolicySpec::PassThrough,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "Cloudguard.me".into(),
                    nodes: 14,
                    shared_key: true,
                    invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                    copy_fields: true,
                    per_site_fraction: 1.0,
                    country: Some("RU".into()),
                },
                TlsInterceptorSpec {
                    issuer: "Dr. Web".into(),
                    nodes: 13,
                    shared_key: true,
                    invalid: InvalidPolicySpec::AltUntrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
                TlsInterceptorSpec {
                    issuer: "McAfee Web Gateway".into(),
                    nodes: 6,
                    shared_key: true,
                    invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                    copy_fields: false,
                    per_site_fraction: 1.0,
                    country: None,
                },
            ],
            monitor_attach: vec![
                MonitorAttachSpec {
                    entity: "Trend Micro".into(),
                    nodes: 6_571,
                    country_limit: Some(13),
                    vpn: false,
                },
                MonitorAttachSpec {
                    entity: "Commtouch".into(),
                    nodes: 1_154,
                    country_limit: None,
                    vpn: false,
                },
                MonitorAttachSpec {
                    entity: "AnchorFree".into(),
                    nodes: 461,
                    country_limit: None,
                    vpn: true,
                },
                MonitorAttachSpec {
                    entity: "Bluecoat".into(),
                    nodes: 453,
                    country_limit: None,
                    vpn: false,
                },
            ],
            blockers: vec![
                BlockerSpec {
                    html: false,
                    js: true,
                    css: false,
                    nodes: 685,
                },
                BlockerSpec {
                    html: false,
                    js: false,
                    css: true,
                    nodes: 167,
                },
                BlockerSpec {
                    html: true,
                    js: false,
                    css: false,
                    nodes: 487,
                },
            ],
        },
        monitors: vec![
            MonitorSpec {
                name: "Trend Micro".into(),
                home_country: "US".into(),
                source_ips: 55,
                profile: MonitorProfile::TrendMicro,
                fixed_second_source: false,
                user_agent: "TMUFE/1.0 (Web Reputation Service)".into(),
            },
            MonitorSpec {
                name: "TalkTalk".into(),
                home_country: "GB".into(),
                source_ips: 6,
                profile: MonitorProfile::TalkTalk,
                fixed_second_source: false,
                user_agent: "TalkTalk-WebSafe/2.0".into(),
            },
            MonitorSpec {
                name: "Commtouch".into(),
                home_country: "US".into(),
                source_ips: 20,
                profile: MonitorProfile::Commtouch,
                fixed_second_source: false,
                user_agent: "Commtouch-GlobalView/4.2".into(),
            },
            MonitorSpec {
                name: "AnchorFree".into(),
                home_country: "US".into(),
                source_ips: 223,
                profile: MonitorProfile::AnchorFree,
                fixed_second_source: true,
                user_agent: "HotspotShield-MalwareProtect/1.3".into(),
            },
            MonitorSpec {
                name: "Bluecoat".into(),
                home_country: "US".into(),
                source_ips: 12,
                profile: MonitorProfile::Bluecoat,
                fixed_second_source: false,
                user_agent: "BlueCoat-WebPulse/5.1".into(),
            },
            MonitorSpec {
                name: "Tiscali U.K.".into(),
                home_country: "GB".into(),
                source_ips: 2,
                profile: MonitorProfile::Tiscali,
                fixed_second_source: false,
                user_agent: "Tiscali-SafeNet/1.0".into(),
            },
        ],
        sites: SiteSpec::default(),
        campaign: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_population_is_near_target() {
        let spec = paper_spec(1.0, DEFAULT_SEED);
        let total = spec.paper_node_total();
        assert!(
            (600_000..800_000).contains(&total),
            "paper-scale population {total}"
        );
        assert!(
            spec.countries.len() >= 60,
            "{} countries",
            spec.countries.len()
        );
    }

    #[test]
    fn ranked_country_share_matches_https_limitation() {
        let spec = paper_spec(1.0, DEFAULT_SEED);
        let ranked = spec.countries.iter().filter(|c| c.has_rankings).count();
        let frac = ranked as f64 / spec.countries.len() as f64;
        // The paper could only cover 115 of 172 countries (~2/3).
        assert!((0.55..0.85).contains(&frac), "ranked fraction {frac}");
    }

    #[test]
    fn table3_countries_present() {
        let spec = paper_spec(1.0, DEFAULT_SEED);
        for (code, _, _) in crate::calibration::TABLE3 {
            assert!(
                spec.countries.iter().any(|c| c.code == code),
                "missing {code}"
            );
        }
    }

    #[test]
    fn hijack_isps_have_landing_domains() {
        let spec = paper_spec(1.0, DEFAULT_SEED);
        for c in &spec.countries {
            for i in &c.isps {
                if i.resolver_hijack {
                    assert!(i.landing_domain.is_some(), "{} lacks landing", i.name);
                }
            }
        }
    }

    #[test]
    fn monitor_attach_references_exist() {
        let spec = paper_spec(1.0, DEFAULT_SEED);
        for att in &spec.endhost.monitor_attach {
            assert!(
                spec.monitors.iter().any(|m| m.name == att.entity),
                "dangling entity {}",
                att.entity
            );
        }
    }
}
