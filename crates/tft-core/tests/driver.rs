//! `StudyDriver` is `run_study_with`, resumable: stepping through every
//! stage must reproduce the monolithic entry point byte-for-byte, at any
//! worker count, including the world-side effects (billing, server logs).

use tft_core::{render_tables, run_study_with, ExecOptions, StudyConfig, StudyDriver, StudyStage};
use worldgen::{build, smoke_spec};

const SEED: u64 = 0x5E4E;

fn monolithic(workers: usize) -> (String, usize, u64, usize) {
    let mut built = build(&smoke_spec(SEED));
    let cfg = smoke_cfg();
    let report = run_study_with(&mut built.world, &cfg, &ExecOptions::with_workers(workers));
    (
        render_tables(&report),
        report.unique_nodes(),
        built.world.bytes_billed(&cfg.customer),
        built.world.web_server().log().len(),
    )
}

fn smoke_cfg() -> StudyConfig {
    StudyConfig {
        min_nodes_per_country: 5,
        min_nodes_per_dns_server: 3,
        ..StudyConfig::default()
    }
}

#[test]
fn driver_visits_every_stage_in_order() {
    let built = build(&smoke_spec(SEED));
    let mut driver = StudyDriver::new(built.world, smoke_cfg(), &ExecOptions::with_workers(2));
    assert!(!driver.is_done());
    assert!(driver.report().is_none());
    let mut visited = Vec::new();
    while !driver.is_done() {
        assert_eq!(driver.next_stage(), {
            let s = driver.step();
            visited.push(s);
            s
        });
    }
    assert_eq!(
        visited,
        [
            StudyStage::Dns,
            StudyStage::Http,
            StudyStage::Https,
            StudyStage::Monitor,
            StudyStage::Analyze,
        ]
    );
    // A step past Done is a no-op, not a panic.
    assert_eq!(driver.step(), StudyStage::Done);
    assert!(driver.report().is_some());
}

#[test]
fn driver_matches_run_study_with_exactly() {
    for workers in [1, 4] {
        let built = build(&smoke_spec(SEED));
        let cfg = smoke_cfg();
        let mut driver = StudyDriver::new(
            built.world,
            cfg.clone(),
            &ExecOptions::with_workers(workers),
        );
        driver.run_to_completion();
        let (report, world) = driver.into_parts();
        let stepped = (
            render_tables(&report),
            report.unique_nodes(),
            world.bytes_billed(&cfg.customer),
            world.web_server().log().len(),
        );
        assert_eq!(
            stepped,
            monolithic(workers),
            "driver diverged from run_study_with at workers={workers}"
        );
    }
}

#[test]
#[should_panic(expected = "before the study completed")]
fn into_parts_before_completion_panics() {
    let built = build(&smoke_spec(SEED));
    let driver = StudyDriver::new(built.world, smoke_cfg(), &ExecOptions::with_workers(1));
    let _ = driver.into_parts();
}
