//! Property tests for the simulation kernel.

use netsim::{Cdf, Scheduler, SimDuration, SimTime, TokenBucket};
use substrate::qc::{self, Config, Gen};
use substrate::{qc_assert, qc_assert_eq};

fn delays(hi: u64, max: usize) -> Gen<Vec<u64>> {
    qc::vec_of(qc::ints(0u64..hi), 1..max)
}

/// The scheduler fires events in (time, insertion) order regardless of
/// insertion order — checked against a reference sort.
#[test]
fn scheduler_matches_reference_order() {
    qc::check(
        "scheduler vs reference order",
        &Config::default(),
        &delays(10_000, 200),
        |delays| {
            let mut s = Scheduler::new();
            for (i, &d) in delays.iter().enumerate() {
                s.schedule(SimDuration::from_millis(d), i);
            }
            let fired: Vec<(u64, usize)> = std::iter::from_fn(|| s.next())
                .map(|f| (f.at.as_millis(), f.payload))
                .collect();
            let mut expected: Vec<(u64, usize)> =
                delays.iter().enumerate().map(|(i, &d)| (d, i)).collect();
            expected.sort();
            qc_assert_eq!(fired, expected);
            qc::pass()
        },
    );
}

/// Cancelling any subset suppresses exactly those events.
#[test]
fn cancellation_suppresses_exactly_the_cancelled() {
    qc::check(
        "cancellation exactness",
        &Config::default(),
        &qc::tuple2(delays(1_000, 100), qc::vec_of(qc::bools(), 100..=100)),
        |(delays, cancel_mask)| {
            let mut s = Scheduler::new();
            let ids: Vec<_> = delays
                .iter()
                .enumerate()
                .map(|(i, &d)| s.schedule(SimDuration::from_millis(d), i))
                .collect();
            let mut kept = Vec::new();
            for (i, id) in ids.iter().enumerate() {
                if cancel_mask[i % cancel_mask.len()] {
                    s.cancel(*id);
                } else {
                    kept.push(i);
                }
            }
            let mut fired: Vec<usize> =
                std::iter::from_fn(|| s.next()).map(|f| f.payload).collect();
            fired.sort();
            kept.sort();
            qc_assert_eq!(fired, kept);
            qc::pass()
        },
    );
}

/// The clock never runs backwards.
#[test]
fn clock_is_monotone() {
    qc::check(
        "clock monotone",
        &Config::default(),
        &delays(5_000, 100),
        |delays| {
            let mut s = Scheduler::new();
            for (i, &d) in delays.iter().enumerate() {
                s.schedule(SimDuration::from_millis(d), i);
            }
            let mut last = SimTime::EPOCH;
            while let Some(f) = s.next() {
                qc_assert!(f.at >= last);
                last = f.at;
            }
            qc::pass()
        },
    );
}

/// Token buckets never oversupply: in any window of N intervals the
/// grant count is at most (N+1) × capacity.
#[test]
fn token_bucket_rate_bound() {
    qc::check(
        "token bucket rate bound",
        &Config::default(),
        &qc::tuple3(qc::ints(1u64..16), qc::ints(1u64..100), delays(10_000, 300)),
        |(cap, interval_ms, probes)| {
            let mut sorted = probes.clone();
            sorted.sort();
            let mut bucket = TokenBucket::new(*cap, SimDuration::from_millis(*interval_ms));
            let mut granted = 0u64;
            for &t in &sorted {
                if bucket.try_take(SimTime::from_millis(t), 1) {
                    granted += 1;
                }
            }
            let span = sorted.last().unwrap() - sorted.first().unwrap();
            let max_grants = (span / interval_ms + 2) * cap;
            qc_assert!(
                granted <= max_grants,
                "granted {granted} > bound {max_grants}"
            );
            qc::pass()
        },
    );
}

/// Checked time arithmetic obeys the algebraic laws on non-overflowing
/// inputs, and agrees with wide (u128) reference arithmetic — the release
/// build used to wrap silently here, which breaks every one of these laws.
#[test]
fn time_arithmetic_laws() {
    qc::check(
        "time arithmetic laws",
        &Config::default(),
        &qc::tuple3(
            qc::ints(0u64..1 << 40),
            qc::ints(0u64..1 << 40),
            qc::ints(1u64..1 << 20),
        ),
        |(t_ms, d_ms, k)| {
            let t = SimTime::from_millis(*t_ms);
            let d = SimDuration::from_millis(*d_ms);

            // Add agrees with wide-integer reference arithmetic.
            let wide = *t_ms as u128 + *d_ms as u128;
            qc_assert_eq!((t + d).as_millis() as u128, wide);

            // Round-trips: (t + d) - d == t, (t + d).since(t) == d.
            qc_assert_eq!((t + d) - d, t);
            qc_assert_eq!((t + d).since(t), d);
            qc_assert_eq!((d + d) - d, d);

            // AddAssign is Add.
            let mut t2 = t;
            t2 += d;
            qc_assert_eq!(t2, t + d);
            let mut d2 = d;
            d2 += d;
            qc_assert_eq!(d2, d + d);

            // Mul agrees with wide arithmetic and Div inverts it (k > 0).
            let wide_mul = *d_ms as u128 * *k as u128;
            qc_assert_eq!((d * *k).as_millis() as u128, wide_mul);
            qc_assert_eq!(d * *k / *k, d);

            // Saturating forms agree with checked forms when nothing
            // saturates.
            qc_assert_eq!(t.saturating_add(d), t + d);
            qc_assert_eq!((d + d).saturating_sub(d), d);
            qc::pass()
        },
    );
}

/// CDF fraction_at is monotone and bounded in [0,1].
#[test]
fn cdf_monotone() {
    qc::check(
        "cdf monotone",
        &Config::default(),
        &qc::tuple2(
            qc::vec_of(qc::floats(0.0..1e6), 1..200),
            qc::vec_of(qc::floats(0.0..1e6), 1..50),
        ),
        |(samples, probes)| {
            let cdf = Cdf::new(samples.clone());
            let mut sorted = probes.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = 0.0;
            for p in sorted {
                let f = cdf.fraction_at(p);
                qc_assert!((0.0..=1.0).contains(&f));
                qc_assert!(f >= last);
                last = f;
            }
            qc::pass()
        },
    );
}
