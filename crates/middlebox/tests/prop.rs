//! Property tests on the violator models: every sample stays inside its
//! declared behavioural envelope.

use middlebox::monitor::{profiles, RefetchOffset};
use middlebox::{extract_urls, HtmlInjector, ImageTranscoder};
use netsim::SimRng;
use proptest::prelude::*;

proptest! {
    /// Every profile's samples stay inside its documented envelope.
    #[test]
    fn refetch_models_respect_envelopes(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for _ in 0..20 {
            for offs in [
                profiles::trend_micro().sample(&mut rng),
                profiles::talktalk().sample(&mut rng),
                profiles::commtouch().sample(&mut rng),
                profiles::anchorfree().sample(&mut rng),
                profiles::bluecoat().sample(&mut rng),
                profiles::tiscali().sample(&mut rng),
            ] {
                prop_assert!(!offs.is_empty() && offs.len() <= 2);
                for o in offs {
                    match o {
                        RefetchOffset::After(d) => {
                            prop_assert!(d.as_millis() >= 1);
                            prop_assert!(d.as_millis() <= 12_500_000);
                        }
                        RefetchOffset::Before(d) => {
                            prop_assert!(d.as_millis() <= 5_000, "prefetch lead {d}");
                        }
                    }
                }
            }
        }
    }

    /// Injection preserves the original document: the modified body always
    /// contains the original head and tail, plus the signature.
    #[test]
    fn injection_preserves_original(
        body in proptest::string::string_regex("<html><head>[a-z ]{0,40}</head><body>[a-z ]{0,200}</body></html>").expect("regex"),
        payload in 0usize..4096,
    ) {
        let inj = HtmlInjector::script("sig.example", payload, 3);
        let out = inj.inject(body.as_bytes());
        let text = String::from_utf8_lossy(&out);
        prop_assert!(text.contains("sig.example"));
        // Everything before </body> in the original is still present.
        let head = body.split("</body>").next().unwrap();
        prop_assert!(text.contains(head));
        prop_assert!(text.ends_with("</body></html>"));
        prop_assert!(out.len() >= body.len() + payload);
    }

    /// Transcoded JPEGs shrink to the configured ratio, for any input size
    /// above the minimum and any ratio.
    #[test]
    fn transcoder_hits_ratio(len in 64usize..100_000, ratio in 0.1f64..0.9, seed in any::<u64>()) {
        let mut img = vec![0xFF, 0xD8, 0xFF];
        img.extend((0..len).map(|i| (i % 251) as u8));
        let t = ImageTranscoder::single(ratio);
        let mut rng = SimRng::new(seed);
        let out = t.transcode(&img, &mut rng);
        let actual = out.len() as f64 / img.len() as f64;
        prop_assert!((actual - ratio).abs() < 0.02, "ratio {actual} vs {ratio}");
        prop_assert_eq!(&out[..3], &[0xFF, 0xD8, 0xFF]);
    }

    /// URL extraction finds every URL planted into arbitrary surrounding
    /// text.
    #[test]
    fn extract_urls_finds_planted(
        hosts in proptest::collection::vec(
            proptest::string::string_regex("[a-z]{3,12}\\.example").expect("regex"),
            1..5,
        ),
        filler in proptest::string::string_regex("[a-zA-Z <>/]{0,60}").expect("regex"),
    ) {
        let mut doc = String::new();
        for h in &hosts {
            doc.push_str(&filler);
            doc.push_str(&format!(" <a href=\"http://{h}/x\">l</a> "));
        }
        let urls = extract_urls(doc.as_bytes());
        for h in &hosts {
            prop_assert!(
                urls.iter().any(|u| u.contains(h.as_str())),
                "missing {h} in {urls:?}"
            );
        }
    }
}
