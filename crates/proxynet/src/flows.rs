//! Request processing: the end-to-end flows of Figures 1–4.
//!
//! Everything the proxy ecosystem *does* lives here — super-proxy DNS
//! pre-checks, exit selection with sessions and retries, remote DNS
//! resolution with hijack semantics, origin fetches with in-path
//! modification, CONNECT tunnels with TLS interception, and monitor
//! refetch scheduling.

use crate::client::{
    Attempt, AttemptOutcome, ChainDamage, ProxyError, ProxyResponse, TimelineDebug, TlsProbeResult,
};
use crate::node::{NodeId, ResolverChoice};
use crate::username::UsernameOptions;
use crate::world::{World, WorldEvent};
use dnswire::{DnsName, Message, QType};
use httpwire::{Response, Uri};
use middlebox::RefetchOffset;
use netsim::rng::RngExt;
use netsim::{FaultInjector, FaultTarget, FaultVerdict, SimRng, SimTime, TraceCategory};
use std::net::Ipv4Addr;

/// Maximum exit-node attempts per request (Luminati retries up to five
/// times, §2.3).
pub const MAX_ATTEMPTS: usize = 5;

/// Reusable wire-codec buffers owned by the world (DESIGN.md §10).
///
/// Every shard fork carries its own set, so the flow layer's encode
/// round-trips (`Response::encode_into`, `dnswire::encode_into`) are
/// allocation-free in steady state: the buffers grow to the largest
/// message once and are recycled across that shard's probes.
#[derive(Debug, Clone, Default)]
pub(crate) struct WireScratch {
    /// HTTP response bytes for the origin → client round trip.
    pub http_wire: Vec<u8>,
    /// DNS message bytes for the query/response round trips.
    pub dns_wire: Vec<u8>,
    /// SMTP reply text for the server → client round trips.
    pub smtp_text: String,
}

/// Outcome of resolution at the exit node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ExitResolve {
    /// A real answer.
    Answer(Ipv4Addr),
    /// NXDOMAIN reached the node unmolested.
    NxDomain,
    /// Someone substituted an answer for NXDOMAIN.
    Hijacked(Ipv4Addr),
}

impl World {
    // -- DNS ---------------------------------------------------------------

    /// The super proxy's pre-resolution through Google DNS. Returns the
    /// resolved address, or None on NXDOMAIN (in which case the super proxy
    /// refuses to forward the request).
    fn resolve_for_super(&mut self, host: &str, at: SimTime) -> Option<Ipv4Addr> {
        let src = self.super_proxy_dns_src();
        self.trace.record_with(at, TraceCategory::SuperProxy, || {
            format!("super proxy resolves {host} via Google DNS ({src})")
        });
        self.resolve_base(host, src, at)
    }

    /// Resolution as performed *by the ecosystem's authoritative side*:
    /// queries for our probe zone hit our authoritative server (and are
    /// logged, with `resolver_src` as the visible source); other known
    /// hosts answer statically; everything else is NXDOMAIN.
    /// Each resolver caches by `(name, qtype)` with real TTL semantics.
    /// This is why the methodology insists on unique per-probe names — and
    /// why footnote 8 must filter nodes sharing the super proxy's anycast
    /// instance: the shared cache answers their d₂ query positively without
    /// ever contacting the authority.
    fn resolve_base(
        &mut self,
        host: &str,
        resolver_src: Ipv4Addr,
        at: SimTime,
    ) -> Option<Ipv4Addr> {
        let Ok(name) = DnsName::parse(host) else {
            return None;
        };
        if name.is_subdomain_of(&self.auth_apex) {
            if self.resolver_caching {
                let cache = self.resolver_caches.entry(resolver_src).or_default();
                match cache.get(&name, QType::A, at) {
                    Some(dnswire::CachedAnswer::Records(rrs)) => {
                        return rrs.iter().find_map(|r| match r.rdata {
                            dnswire::RData::A(ip) => Some(ip),
                            _ => None,
                        });
                    }
                    Some(dnswire::CachedAnswer::Negative(_)) => return None,
                    None => {}
                }
            }
            // Full wire exercise: the query travels as RFC 1035 bytes,
            // through the shard's reused scratch buffer.
            let mut wire = std::mem::take(&mut self.scratch.dns_wire);
            let id: u16 = self.rng.random();
            let query = Message::query(id, name.clone(), QType::A);
            dnswire::encode_into(&query, &mut wire).expect("query encodes");
            let query = dnswire::decode(&wire).expect("query decodes");
            let resp = self.auth_server.handle(&query, resolver_src, at);
            dnswire::encode_into(&resp, &mut wire).expect("response encodes");
            let resp = dnswire::decode(&wire).expect("response decodes");
            self.scratch.dns_wire = wire;
            if self.resolver_caching {
                let cache = self.resolver_caches.entry(resolver_src).or_default();
                if resp.is_nxdomain() {
                    cache.put_negative(name, QType::A, dnswire::Rcode::NxDomain, at);
                } else if !resp.answers.is_empty() {
                    cache.put(name, QType::A, resp.answers.clone(), at);
                }
            }
            if resp.is_nxdomain() {
                return None;
            }
            return resp.first_a();
        }
        if let Some(site) = self.origin_sites.get(host) {
            return Some(site.ip);
        }
        None
    }

    /// Resolution at the exit node, through its configured resolver, with
    /// the three hijack layers applied in network order: resolver, then
    /// transparent in-path proxy, then end-host software.
    pub(crate) fn resolve_at_exit(
        &mut self,
        node_id: NodeId,
        host: &str,
        at: SimTime,
    ) -> ExitResolve {
        let node = &self.nodes[node_id.0 as usize];
        let (resolver_src, resolver_hijacker) = match node.resolver {
            ResolverChoice::Isp(ip) | ResolverChoice::Public(ip) => {
                let hij = self.resolvers.get(&ip).and_then(|def| def.hijacker.clone());
                (ip, hij)
            }
            ResolverChoice::GoogleDns => (self.google_instance_for(node.country, node_id), None),
        };
        let asn = node.asn;
        self.trace.record_with(at, TraceCategory::Dns, || {
            format!("exit node resolves {host} via {resolver_src}")
        });
        if let Some(ip) = self.resolve_base(host, resolver_src, at) {
            return ExitResolve::Answer(ip);
        }
        // NXDOMAIN: the hijack layers get their chance.
        if let Some(h) = resolver_hijacker {
            self.trace.record_with(at, TraceCategory::Middlebox, || {
                format!("resolver {resolver_src} hijacks NXDOMAIN for {host}")
            });
            return ExitResolve::Hijacked(h.landing_ip);
        }
        if let Some(h) = self.transparent_dns.get(&asn) {
            let ip = h.landing_ip;
            self.trace.record_with(at, TraceCategory::Middlebox, || {
                format!("transparent proxy in {asn} hijacks NXDOMAIN for {host}")
            });
            return ExitResolve::Hijacked(ip);
        }
        let node = &self.nodes[node_id.0 as usize];
        if let Some(h) = &node.software.dns_hijacker {
            let ip = h.landing_ip;
            self.trace.record_with(at, TraceCategory::Middlebox, || {
                format!("end-host software hijacks NXDOMAIN for {host}")
            });
            return ExitResolve::Hijacked(ip);
        }
        ExitResolve::NxDomain
    }

    // -- exit selection ------------------------------------------------------

    /// Pick an exit node honoring `-country-XX`, excluding already-tried
    /// nodes. Offline nodes *can* be picked — the failure then shows up in
    /// the debug timeline, which is how the retry path gets exercised.
    pub(crate) fn pick_exit(
        &mut self,
        opts: &UsernameOptions,
        exclude: &[NodeId],
    ) -> Option<NodeId> {
        let pool: &[NodeId] = match opts.country {
            Some(cc) => self.pool_by_country.get(&cc).map(|v| v.as_slice())?,
            None => &self.pool_all,
        };
        if pool.is_empty() {
            return None;
        }
        for _ in 0..64 {
            let id = pool[self.rng.random_range(0..pool.len())];
            if !exclude.contains(&id) {
                return Some(id);
            }
        }
        None
    }

    /// Session-aware selection for the first attempt.
    pub(crate) fn pick_first(&mut self, opts: &UsernameOptions, now: SimTime) -> Option<NodeId> {
        if let Some(sid) = opts.session {
            if let Some(node) = self.sessions.lookup(&opts.customer, sid, now) {
                return Some(node);
            }
        }
        self.pick_exit(opts, &[])
    }

    fn touch_session(&mut self, opts: &UsernameOptions, node: NodeId, now: SimTime) {
        if let Some(sid) = opts.session {
            self.sessions.touch(&opts.customer, sid, node, now);
        }
    }

    // -- origin fetch --------------------------------------------------------

    /// Serve a request arriving at `ip` for `host`/`path` from `src`,
    /// encoding the response's HTTP/1.1 wire bytes into `out` (cleared
    /// first). Web-server routes encode straight from the borrowed route
    /// entry, so the multi-KB probe objects are never cloned per request.
    // Eight arguments is the honest shape of one logged origin hit:
    // time, addressing (src/ip/host/path), UA, and the output buffer.
    #[allow(clippy::too_many_arguments)]
    fn origin_response_into(
        &mut self,
        at: SimTime,
        src: Ipv4Addr,
        ip: Ipv4Addr,
        host: &str,
        path: &str,
        user_agent: Option<&str>,
        out: &mut Vec<u8>,
    ) {
        if ip == self.web_ip {
            self.trace.record_with(at, TraceCategory::Origin, || {
                format!("measurement web server serves http://{host}{path} to {src}")
            });
            match self.web_server.handle_ref(at, src, host, path, user_agent) {
                Some(r) => r.encode_into(out),
                None => Response::new(httpwire::StatusCode::NOT_FOUND, b"not found".to_vec())
                    .encode_into(out),
            }
            return;
        }
        if let Some(h) = self.landing.get(&ip) {
            self.trace.record_with(at, TraceCategory::Origin, || {
                format!("hijack landing server at {ip} serves assist page for {host}")
            });
            Response::ok("text/html", h.hijack_page(host)).encode_into(out);
            return;
        }
        if let Some(site_host) = self.origin_by_ip.get(&ip) {
            let body = self.origin_sites[site_host].http_body.clone();
            Response::ok("text/html", body).encode_into(out);
            return;
        }
        Response::new(httpwire::StatusCode::BAD_GATEWAY, Vec::new()).encode_into(out);
    }

    /// Apply in-path and end-host response modification (§5).
    fn apply_response_mods(&mut self, node_id: NodeId, resp: &mut Response) {
        let node = &self.nodes[node_id.0 as usize];
        let ctype = resp.content_type().unwrap_or_default();
        let asn = node.asn;
        let tethered = node.mobile_tethered;
        // In-path ISP boxes first (closer to the origin than the host).
        if let Some(cfg) = self.isp_http.get(&asn) {
            if ctype == "image/jpeg" && tethered {
                if let Some(t) = &cfg.transcoder {
                    let mut rng = self.rng.fork_indexed("transcode", node_id.0 as u64);
                    resp.body = t.transcode(&resp.body, &mut rng);
                }
            }
            if ctype == "text/html" {
                if let Some(inj) = &cfg.injector {
                    resp.body = inj.inject(&resp.body);
                }
            }
        }
        // End-host software last (it sees what the browser would see).
        let node = &self.nodes[node_id.0 as usize];
        if ctype == "text/html" {
            if let Some(inj) = &node.software.html_injector {
                resp.body = inj.inject(&resp.body);
            }
        }
        // Whole-object blockers replace rather than modify (§5.2's JS/CSS
        // "bandwidth exceeded" pages).
        if let Some(blocker) = &node.software.blocker {
            if blocker.blocks(&ctype) {
                resp.body = blocker.block_page(&ctype);
            }
        }
    }

    /// Schedule monitor refetches for a request the node just made to our
    /// web server (§7). Refetches of third-party sites exist too but never
    /// reach our logs, so they are not simulated.
    fn schedule_monitors(&mut self, node_id: NodeId, host: &str, path: &str, t_origin: SimTime) {
        let monitor_idxs = self.nodes[node_id.0 as usize].software.monitors.clone();
        for idx in monitor_idxs {
            let entity = &self.monitors[idx];
            // Same label bytes as the historical `format!("monitor-{idx}")`,
            // pre-rendered at registration so the seed derivation (and the
            // goldens pinning it) is untouched.
            let mut rng = self
                .rng
                .fork_indexed(&self.monitor_fork_labels[idx], node_id.0 as u64 ^ fnv(host));
            let plan = entity.plan(&mut rng);
            let ua = entity.user_agent.clone();
            for refetch in plan {
                let at = match refetch.offset {
                    RefetchOffset::After(d) => t_origin + d,
                    // A prefetch would arrive before the user's own request;
                    // we can schedule no earlier than "now", which still
                    // lands it *before* the user's request reaches the
                    // origin (negative observed delay, as in Figure 5).
                    RefetchOffset::Before(d) => {
                        let ideal_ms = t_origin.as_millis().saturating_sub(d.as_millis());
                        let ideal = SimTime::from_millis(ideal_ms);
                        if ideal >= self.sched.now() {
                            ideal
                        } else {
                            self.sched.now()
                        }
                    }
                };
                self.sched.schedule_at(
                    at,
                    WorldEvent::MonitorRefetch {
                        src: refetch.src,
                        host: host.to_string(),
                        path: path.to_string(),
                        user_agent: ua.clone(),
                    },
                );
            }
        }
    }

    pub(crate) fn advance_to(&mut self, t: SimTime) {
        if t <= self.sched.now() {
            return;
        }
        let by = t.since(self.sched.now());
        self.advance(by);
    }

    // -- chaos machinery -----------------------------------------------------

    /// Judge one exit-link delivery: the uniform injector first (the legacy
    /// single knob), then the scripted campaign — first interference wins.
    /// With no campaign installed this is byte-for-byte the legacy
    /// judgement: the campaign branch draws nothing.
    fn judge_link(&self, node_id: NodeId, at: SimTime, rng: &mut SimRng) -> FaultVerdict {
        let verdict = self.fault.judge(rng);
        if !verdict.is_clean() || self.campaign.is_none() {
            return verdict;
        }
        let node = &self.nodes[node_id.0 as usize];
        let target = FaultTarget {
            region: node.country.as_str(),
            isp: node.asn.0 as u64,
            node: node_id.0 as u64,
        };
        self.campaign.judge(&target, at, rng)
    }

    /// Has the per-request budget elapsed by proxy-time `t`?
    fn past_deadline(&self, t0: SimTime, t: SimTime) -> bool {
        self.request_deadline.is_some_and(|dl| t >= t0 + dl)
    }

    /// When every recorded attempt was skipped on an open circuit, the
    /// request failed fast rather than exhausting retries.
    fn all_retries_error(debug: TimelineDebug) -> ProxyError {
        if !debug.attempts.is_empty()
            && debug
                .attempts
                .iter()
                .all(|a| a.outcome == AttemptOutcome::CircuitOpen)
        {
            ProxyError::CircuitOpen(debug)
        } else {
            ProxyError::AllRetriesFailed(debug)
        }
    }

    // -- the client-facing flows ----------------------------------------------

    /// Proxied HTTP GET (Figure 1): client → super proxy → exit node →
    /// origin and back.
    // tft-lint: hot-root — per-probe proxied GET flow
    pub fn proxy_get(
        &mut self,
        opts: &UsernameOptions,
        url: &Uri,
    ) -> Result<ProxyResponse, ProxyError> {
        let t0 = self.admit_customer(&opts.customer, self.now());
        let mut rng = self.rng.fork_indexed("latency", t0.as_millis());
        let l = self.latencies;
        self.trace.record_with(t0, TraceCategory::Client, || {
            format!("client sends GET {url} to super proxy")
        });
        let t_super = t0 + l.client_to_super.sample(&mut rng);

        // ② super proxy DNS check.
        let t_dnsq = t_super + l.super_to_dns.sample(&mut rng);
        let super_ip = self.resolve_for_super(&url.host, t_dnsq);
        let t_checked = t_dnsq + l.super_to_dns.sample(&mut rng);
        let Some(super_ip) = super_ip else {
            self.trace
                .record_with(t_checked, TraceCategory::SuperProxy, || {
                    format!("super proxy: {} does not resolve; refusing", url.host)
                });
            self.advance_to(t_checked + l.client_to_super.sample(&mut rng));
            return Err(ProxyError::SuperProxyDnsFailure);
        };

        let mut debug = TimelineDebug::default();
        let mut tried: Vec<NodeId> = Vec::new();
        let mut t = t_checked;
        for attempt in 0..self.max_attempts {
            // The client hangs up once the request budget is spent (§2.3).
            if self.past_deadline(t0, t) {
                self.advance_to(t);
                return Err(ProxyError::DeadlineExceeded(debug));
            }
            let node_id = if attempt == 0 {
                match self.pick_first(opts, t) {
                    Some(id) => id,
                    None => return Err(ProxyError::NoExitAvailable),
                }
            } else {
                match self.pick_exit(opts, &tried) {
                    Some(id) => id,
                    None => break,
                }
            };
            tried.push(node_id);
            let zid = self.nodes[node_id.0 as usize].zid;
            let node_u = node_id.0 as u64;
            let asn_u = self.nodes[node_id.0 as usize].asn.0 as u64;
            // Skipping an open circuit costs neither time nor budget.
            if self.breakers.enabled() && !self.breakers.allows(node_u, asn_u, t) {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::CircuitOpen,
                });
                continue;
            }
            let t_exit = t + l.super_to_exit.sample(&mut rng);
            self.trace
                .record_with(t_exit, TraceCategory::SuperProxy, || {
                    format!("super proxy forwards request to exit node {zid}")
                });

            // Residential reality: offline nodes, flaky links, and whatever
            // the fault campaign scripts for this link at this moment.
            let verdict = self.judge_link(node_id, t_exit, &mut rng);
            let node = &self.nodes[node_id.0 as usize];
            let flaked = matches!(verdict, FaultVerdict::Drop)
                || (node.flakiness > 0.0 && rng.random_bool(node.flakiness));
            let t_exit = t_exit + verdict.extra_delay();
            if !node.online {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::Offline,
                });
                self.breakers.record_failure(node_u, asn_u, t_exit);
                t = t_exit + l.super_to_exit.sample(&mut rng);
                t += self.retry_policy.delay(attempt, &mut rng);
                continue;
            }
            if flaked {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::Flaked,
                });
                self.breakers.record_failure(node_u, asn_u, t_exit);
                t = t_exit + l.super_to_exit.sample(&mut rng);
                t += self.retry_policy.delay(attempt, &mut rng);
                continue;
            }
            if matches!(verdict, FaultVerdict::Stall) {
                // The exchange hangs: the super proxy's read times out, and
                // the stalled wait burns the request budget.
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::TimedOut,
                });
                self.breakers.record_failure(node_u, asn_u, t_exit);
                t = match self.request_deadline {
                    Some(dl) => t0 + dl,
                    None => t_exit + l.super_to_exit.sample(&mut rng),
                };
                t += self.retry_policy.delay(attempt, &mut rng);
                continue;
            }

            // ④ exit-node DNS, when `-dns-remote` moves resolution there.
            let (effective_ip, t_resolved) = if opts.dns_remote {
                let t_q = t_exit + l.exit_to_dns.sample(&mut rng);
                match self.resolve_at_exit(node_id, &url.host, t_q) {
                    ExitResolve::Answer(ip) => (ip, t_q + l.exit_to_dns.sample(&mut rng)),
                    ExitResolve::Hijacked(ip) => (ip, t_q + l.exit_to_dns.sample(&mut rng)),
                    ExitResolve::NxDomain => {
                        debug.attempts.push(Attempt {
                            zid,
                            outcome: AttemptOutcome::DnsError,
                        });
                        // The link worked; NXDOMAIN is an answer, not a
                        // failure, so the circuit stays closed.
                        self.breakers.record_success(node_u, asn_u);
                        self.touch_session(opts, node_id, t_q);
                        self.advance_to(t_q + l.client_to_super.sample(&mut rng));
                        // NXDOMAIN is an authoritative answer, not a node
                        // failure: the super proxy reports it rather than
                        // retrying.
                        return Err(ProxyError::ExitDnsFailure(debug));
                    }
                }
            } else {
                (super_ip, t_exit)
            };

            // ⑤ the actual origin fetch.
            let t_origin = t_resolved + l.exit_to_origin.sample(&mut rng);
            let node = &self.nodes[node_id.0 as usize];
            let observed_src = match &node.software.vpn_egress {
                Some(pool) if !pool.is_empty() => {
                    // VPN egress: the origin never sees the node's own IP.
                    let head = pool.len().saturating_sub(1).max(1);
                    pool[rng.random_range(0..head)]
                }
                _ => node.ip,
            };
            // The response travels as real HTTP/1.1 bytes, through the
            // shard's reused scratch buffer.
            let mut wire = std::mem::take(&mut self.scratch.http_wire);
            self.origin_response_into(
                t_origin,
                observed_src,
                effective_ip,
                &url.host,
                &url.path,
                Some("Hola/1.108"),
                &mut wire,
            );
            let (mut resp, _) = Response::parse(&wire).expect("own encoding parses");
            self.scratch.http_wire = wire;
            self.apply_response_mods(node_id, &mut resp);
            // Transport damage scripted by the campaign lands *after* the
            // in-path modifications: the client receives a mangled or
            // cut-short copy of whatever actually travelled the tunnel.
            match verdict {
                FaultVerdict::CorruptAndDeliver { .. } => {
                    FaultInjector::corrupt(&mut rng, &mut resp.body);
                }
                FaultVerdict::Truncate { .. } => {
                    FaultInjector::truncate(&mut rng, &mut resp.body);
                }
                _ => {}
            }
            if effective_ip == self.web_ip {
                self.schedule_monitors(node_id, &url.host, &url.path, t_origin);
            }

            debug.attempts.push(Attempt {
                zid,
                outcome: AttemptOutcome::Success,
            });
            self.breakers.record_success(node_u, asn_u);
            let t_back = t_origin
                + l.exit_to_origin.sample(&mut rng)
                + l.super_to_exit.sample(&mut rng)
                + l.client_to_super.sample(&mut rng);
            self.touch_session(opts, node_id, t_back);
            let billed = resp.body.len() as u64;
            // Point-lookup first: the entry API would clone the customer
            // key on every request, hit or miss.
            match self.bytes_billed.get_mut(&opts.customer) {
                Some(v) => *v += billed,
                None => {
                    self.bytes_billed.insert(opts.customer.clone(), billed);
                }
            }
            self.trace.record_with(t_back, TraceCategory::Client, || {
                format!(
                    "client receives {} ({} bytes) via {zid}",
                    resp.status,
                    resp.body.len()
                )
            });
            self.advance_to(t_back);

            let exit_ip = self.nodes[node_id.0 as usize].ip;
            let mut headers = std::mem::take(&mut resp.headers);
            headers.set("X-Hola-Timeline-Debug", &debug.to_header_value());
            headers.set("X-Hola-Unblocker-Debug", &format!("zid={zid} ip={exit_ip}"));
            return Ok(ProxyResponse {
                status: resp.status,
                headers,
                body: resp.body,
                debug,
                exit_ip,
            });
        }
        self.advance_to(t + l.client_to_super.sample(&mut rng));
        Err(Self::all_retries_error(debug))
    }

    /// CONNECT tunnel + TLS certificate collection (Figure 3): the client
    /// tunnels TCP to `target:443` via an exit node, starts a handshake
    /// with `sni`, records the presented chain, and tears down without
    /// requesting content.
    // tft-lint: hot-root — per-probe CONNECT+TLS flow
    pub fn proxy_connect_tls(
        &mut self,
        opts: &UsernameOptions,
        target: Ipv4Addr,
        port: u16,
        sni: &str,
    ) -> Result<TlsProbeResult, ProxyError> {
        if port != 443 {
            return Err(ProxyError::PortNotAllowed(port));
        }
        let t0 = self.admit_customer(&opts.customer, self.now());
        let mut rng = self.rng.fork_indexed("latency-tls", t0.as_millis());
        let l = self.latencies;
        self.trace.record_with(t0, TraceCategory::Client, || {
            format!("client sends CONNECT {target}:443 to super proxy")
        });
        let mut debug = TimelineDebug::default();
        let mut tried: Vec<NodeId> = Vec::new();
        let mut t = t0 + l.client_to_super.sample(&mut rng);
        for attempt in 0..self.max_attempts {
            if self.past_deadline(t0, t) {
                self.advance_to(t);
                return Err(ProxyError::DeadlineExceeded(debug));
            }
            let node_id = if attempt == 0 {
                match self.pick_first(opts, t) {
                    Some(id) => id,
                    None => return Err(ProxyError::NoExitAvailable),
                }
            } else {
                match self.pick_exit(opts, &tried) {
                    Some(id) => id,
                    None => break,
                }
            };
            tried.push(node_id);
            let zid = self.nodes[node_id.0 as usize].zid;
            let node_u = node_id.0 as u64;
            let asn_u = self.nodes[node_id.0 as usize].asn.0 as u64;
            if self.breakers.enabled() && !self.breakers.allows(node_u, asn_u, t) {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::CircuitOpen,
                });
                continue;
            }
            let t_exit = t + l.super_to_exit.sample(&mut rng);
            let node = &self.nodes[node_id.0 as usize];
            if !node.online {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::Offline,
                });
                self.breakers.record_failure(node_u, asn_u, t_exit);
                t = t_exit + l.super_to_exit.sample(&mut rng);
                t += self.retry_policy.delay(attempt, &mut rng);
                continue;
            }
            let verdict = self.judge_link(node_id, t_exit, &mut rng);
            let node = &self.nodes[node_id.0 as usize];
            if matches!(verdict, FaultVerdict::Drop)
                || (node.flakiness > 0.0 && rng.random_bool(node.flakiness))
            {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::Flaked,
                });
                self.breakers.record_failure(node_u, asn_u, t_exit);
                t = t_exit + l.super_to_exit.sample(&mut rng);
                t += self.retry_policy.delay(attempt, &mut rng);
                continue;
            }
            if matches!(verdict, FaultVerdict::Stall) {
                debug.attempts.push(Attempt {
                    zid,
                    outcome: AttemptOutcome::TimedOut,
                });
                self.breakers.record_failure(node_u, asn_u, t_exit);
                t = match self.request_deadline {
                    Some(dl) => t0 + dl,
                    None => t_exit + l.super_to_exit.sample(&mut rng),
                };
                t += self.retry_policy.delay(attempt, &mut rng);
                continue;
            }
            let t_exit = t_exit + verdict.extra_delay();

            let t_origin = t_exit + l.exit_to_origin.sample(&mut rng);
            let Some(site_host) = self.origin_by_ip.get(&target).cloned() else {
                self.advance_to(t_origin + l.client_to_super.sample(&mut rng));
                return Err(ProxyError::ConnectionRefused);
            };
            let site = &self.origin_sites[&site_host];
            if site.chain.is_empty() {
                self.advance_to(t_origin + l.client_to_super.sample(&mut rng));
                return Err(ProxyError::ConnectionRefused);
            }
            let original = site.chain.clone();
            let original_valid = site.chain_valid;
            let original_len = original.len();
            let original_fp = original.first().map(|c| c.fingerprint());
            self.trace.record_with(t_origin, TraceCategory::Tls, || {
                format!("exit node {zid} handshakes with {site_host} ({target}:443)")
            });
            let now = self.now();
            // Copy-on-write: issuing a spoofed cert advances the
            // interceptor's key stream, so the touched node unshares.
            let node = self.node_cow(node_id);
            let mut chain = node
                .software
                .tls_interceptor
                .as_mut()
                .and_then(|i| i.intercept(sni, &original, original_valid, now))
                .unwrap_or(original);
            if chain.len() != original_len || chain.first().map(|c| c.fingerprint()) != original_fp
            {
                self.trace
                    .record_with(t_origin, TraceCategory::Middlebox, || {
                        format!("certificate replaced for {sni} on {zid}")
                    });
            }

            // Campaign-scripted transport damage to the handshake bytes:
            // the chain still arrives but is untrustworthy evidence, and the
            // client can tell (decode failure) — the analysis layer
            // quarantines it instead of scoring certificate replacement.
            let damaged = match verdict {
                FaultVerdict::CorruptAndDeliver { .. } => Some(ChainDamage::Garbled),
                FaultVerdict::Truncate { .. } => {
                    let keep = rng.random_range(0..chain.len());
                    chain.truncate(keep);
                    Some(ChainDamage::Truncated)
                }
                _ => None,
            };

            debug.attempts.push(Attempt {
                zid,
                outcome: AttemptOutcome::Success,
            });
            self.breakers.record_success(node_u, asn_u);
            let t_back = t_origin
                + l.exit_to_origin.sample(&mut rng)
                + l.super_to_exit.sample(&mut rng)
                + l.client_to_super.sample(&mut rng);
            self.touch_session(opts, node_id, t_back);
            // Certificates travel in the handshake; bill a nominal size.
            *self.bytes_billed.entry(opts.customer.clone()).or_insert(0) +=
                chain.len() as u64 * 1500;
            self.advance_to(t_back);
            self.trace.record_with(t_back, TraceCategory::Client, || {
                format!("client records {} certificate(s) and closes", chain.len())
            });
            let exit_ip = self.nodes[node_id.0 as usize].ip;
            return Ok(TlsProbeResult {
                chain,
                debug,
                exit_ip,
                damaged,
            });
        }
        self.advance_to(t + l.client_to_super.sample(&mut rng));
        Err(Self::all_retries_error(debug))
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
