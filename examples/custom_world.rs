//! Custom scenario: the library is not tied to the paper's population.
//! This example builds a bespoke two-country world with one injecting ISP
//! and one monitoring AV product, runs the HTTP and monitoring experiments,
//! and shows the pipeline discovering exactly what was planted.
//!
//! ```sh
//! cargo run --release --example custom_world
//! ```

use tft::prelude::*;
use tft::worldgen::spec::*;

fn main() {
    let spec = WorldSpec {
        seed: 2026,
        scale: 1.0, // counts below are literal
        probe_apex: "probe.lab.example".into(),
        countries: vec![
            CountrySpec {
                code: "AA".into(),
                has_rankings: true,
                isps: vec![
                    IspSpec {
                        isp_injector_meta: Some("LabFilterResult".into()),
                        ..IspSpec::clean("FilterNet", 400)
                    },
                    IspSpec::clean("CleanNet AA", 800),
                ],
            },
            CountrySpec {
                code: "BB".into(),
                has_rankings: true,
                // Many ASes: the experiment samples three nodes per AS, so
                // sparse end-host malware is only visible when the infected
                // population spans enough ASes (the paper notes this
                // sampling "may underestimate content modification that
                // ASes apply non-uniformly").
                isps: vec![IspSpec {
                    auto_as_count: 40,
                    ..IspSpec::clean("CleanNet BB", 1_000)
                }],
            },
        ],
        public_resolvers: PublicResolverSpec {
            clean_servers: 20,
            services: vec![],
            hijacking_service_weight: 0.0,
        },
        endhost: EndhostSpec {
            html_injectors: vec![HtmlInjectorSpec {
                signature: "lab-adware.example".into(),
                is_script_url: true,
                nodes: 30,
                country: Some("BB".into()),
                payload_bytes: 2048,
                ad_count: 4,
            }],
            monitor_attach: vec![MonitorAttachSpec {
                entity: "Lab AV".into(),
                nodes: 60,
                country_limit: None,
                vpn: false,
            }],
            ..EndhostSpec::default()
        },
        monitors: vec![MonitorSpec {
            name: "Lab AV".into(),
            home_country: "AA".into(),
            source_ips: 4,
            profile: MonitorProfile::Commtouch,
            fixed_second_source: false,
            user_agent: "LabAV/0.1".into(),
        }],
        sites: SiteSpec::default(),
        campaign: Vec::new(),
    };

    println!(
        "building custom world ({} nodes at paper scale)…",
        spec.paper_node_total()
    );
    let mut built = build(&spec);
    let cfg = StudyConfig {
        min_nodes_per_as: 3,
        ..StudyConfig::default()
    };

    println!("running HTTP experiment…");
    let http = tft::tft_core::http_exp::run(&mut built.world, &cfg);
    let http_a = tft::tft_core::analysis::http::analyze(&http, &built.world, &cfg);
    println!(
        "  {} nodes measured, {} HTML modified",
        http_a.nodes, http_a.html_modified
    );
    for sig in &http_a.signatures {
        println!(
            "  signature {:<24} on {} nodes in {} ASes",
            sig.signature, sig.nodes, sig.ases
        );
    }
    for (asn, name, ratio) in &http_a.isp_level_injection_ases {
        println!(
            "  ISP-level filter: {asn} ({name}) modifies {:.0}% of nodes",
            ratio * 100.0
        );
    }

    println!("running monitoring experiment…");
    let mon = tft::tft_core::monitor_exp::run(&mut built.world, &cfg);
    let mon_a = tft::tft_core::analysis::monitor::analyze(&mon, &built.world, &cfg);
    for e in &mon_a.entities {
        println!(
            "  entity {:<12} monitors {} nodes from {} source IPs",
            e.name, e.nodes, e.source_ips
        );
    }

    println!(
        "\nNote: per-AS sampling (3 nodes/AS, revisit on detection) finds the\n\
         uniformly-injecting ISP reliably; sparse end-host adware is caught\n\
         only in ASes where an infected node landed in the sample — the\n\
         sampling bias §5.1 acknowledges.\n"
    );
    println!(
        "planted: {} injected nodes, {} ISP-filtered nodes, {} monitored nodes",
        built
            .truth
            .html_injected
            .values()
            .filter(|s| s.contains("lab-adware"))
            .count(),
        built
            .truth
            .html_injected
            .values()
            .filter(|s| s.contains("LabFilter"))
            .count(),
        built.truth.monitored.len()
    );
}
