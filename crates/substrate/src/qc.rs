//! A seeded property-testing mini-framework (the workspace's `proptest`
//! replacement).
//!
//! Design, in one paragraph: a [`Gen<T>`] couples a generation closure
//! (drawing from a [`Xoshiro256pp`]) with a value-based shrinker in the
//! QuickCheck style. [`check`] runs a property over `cases` generated
//! inputs; each case's generator is seeded from `mix64(base_seed, case
//! index)`, so runs are **fully deterministic by default** and any failure
//! is replayable from the seed printed in the panic message. On failure the
//! runner greedily walks shrink candidates (first candidate that still
//! fails becomes the new witness) before reporting the minimal input found.
//!
//! Environment knobs:
//! - `QC_SEED` — override the base seed (decimal or `0x…` hex) to explore
//!   new inputs or replay a reported failure;
//! - `QC_CASES` — override the per-property case count.

use crate::rng::{mix64, usize_bounds, RngExt, SampleUniform, Xoshiro256pp};
use std::fmt::Debug;
use std::ops::RangeBounds;
use std::rc::Rc;

/// Outcome of one property evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestResult {
    /// The property held for this input.
    Pass,
    /// The input did not satisfy the property's assumptions; generate a
    /// replacement (does not count toward the case budget).
    Discard,
    /// The property failed, with an explanation.
    Fail(String),
}

/// Shorthand for [`TestResult::Pass`], for use as a property's tail
/// expression after `qc_assert!`-style macros.
pub fn pass() -> TestResult {
    TestResult::Pass
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of non-discarded inputs each property must pass.
    pub cases: u32,
    /// Base seed; per-case seeds are derived as `mix64(seed ^ case_index)`.
    pub seed: u64,
    /// Cap on successful shrink steps taken after a failure.
    pub max_shrink_steps: u32,
}

/// Default base seed; any fixed value works, this one is greppable.
const DEFAULT_SEED: u64 = 0x5EED_CA5E;

impl Default for Config {
    fn default() -> Self {
        let seed = std::env::var("QC_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(DEFAULT_SEED);
        let cases = std::env::var("QC_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Config {
            cases,
            seed,
            max_shrink_steps: 1024,
        }
    }
}

impl Config {
    /// The default configuration (environment overrides applied).
    pub fn new() -> Config {
        Config::default()
    }

    /// The default configuration with an explicit case count (`QC_CASES`
    /// still wins, so a failing property can be re-examined cheaply).
    pub fn with_cases(cases: u32) -> Config {
        let mut c = Config::default();
        if std::env::var_os("QC_CASES").is_none() {
            c.cases = cases;
        }
        c
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

type GenerateFn<T> = Rc<dyn Fn(&mut Xoshiro256pp) -> T>;
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A value generator with an attached shrinker.
///
/// Shrinking is value-based (QuickCheck style): `shrink(v)` proposes a
/// bounded list of strictly "smaller" candidates. Combinators built by
/// [`Gen::map`] drop shrinking (there is no inverse); compose shrinking
/// generators at the outermost tuple level where possible.
pub struct Gen<T> {
    generate: GenerateFn<T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a raw closure, with no shrinking.
    pub fn new(f: impl Fn(&mut Xoshiro256pp) -> T + 'static) -> Gen<T> {
        Gen {
            generate: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Attach (or replace) the shrinker.
    pub fn with_shrink(self, s: impl Fn(&T) -> Vec<T> + 'static) -> Gen<T> {
        Gen {
            generate: self.generate,
            shrink: Rc::new(s),
        }
    }

    /// Draw one value.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> T {
        (self.generate)(rng)
    }

    /// Propose shrink candidates for a failing value.
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Transform generated values. The result does not shrink.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.generate;
        Gen::new(move |rng| f(g(rng)))
    }

    /// Keep only values satisfying `pred`, retrying generation (up to 1000
    /// attempts — a tighter predicate should be built into the generator).
    /// Shrink candidates are filtered through the same predicate.
    pub fn filter(self, pred: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        let pred = Rc::new(pred);
        let g = self.generate;
        let s = self.shrink;
        let p2 = Rc::clone(&pred);
        Gen {
            generate: Rc::new(move |rng| {
                for _ in 0..1000 {
                    let v = g(rng);
                    if pred(&v) {
                        return v;
                    }
                }
                panic!("[qc] Gen::filter: predicate rejected 1000 straight values")
            }),
            shrink: Rc::new(move |v| s(v).into_iter().filter(|c| p2(c)).collect()),
        }
    }
}

/// Always produce `value`.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// Uniform integer in `range` (`lo..hi`, `lo..=hi`, or `lo..`); shrinks
/// toward the lower bound by halving the distance.
pub fn ints<T>(range: impl RangeBounds<T> + Clone + 'static) -> Gen<T>
where
    T: SampleUniform + Int + Copy + 'static,
{
    let (lo, hi) = int_bounds(&range);
    Gen::new(move |rng| T::sample_inclusive(rng, lo, hi)).with_shrink(move |&v| {
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let half = T::midpoint(lo, v);
            if half != lo && half != v {
                out.push(half);
            }
            if let Some(prev) = T::step_toward(v, lo) {
                if prev != lo && Some(prev) != out.last().copied() {
                    out.push(prev);
                }
            }
        }
        out
    })
}

/// Integer helper operations needed by [`ints`] shrinking.
pub trait Int: PartialOrd + Sized {
    /// The midpoint of `lo` and `v` (rounded toward `lo`).
    fn midpoint(lo: Self, v: Self) -> Self;
    /// One unit from `v` toward `lo`, or `None` at the boundary.
    fn step_toward(v: Self, lo: Self) -> Option<Self>;
    /// The type's minimum and maximum (range-bound defaults).
    const MIN: Self;
    /// See [`Int::MIN`].
    const MAX: Self;
}

macro_rules! impl_int {
    ($($t:ty),+) => {$(
        impl Int for $t {
            fn midpoint(lo: Self, v: Self) -> Self {
                // Never overflows: computed as lo + (v - lo)/2 in i128.
                ((lo as i128) + ((v as i128) - (lo as i128)) / 2) as $t
            }
            fn step_toward(v: Self, lo: Self) -> Option<Self> {
                if v > lo { Some(v - 1) } else { None }
            }
            const MIN: Self = <$t>::MIN;
            const MAX: Self = <$t>::MAX;
        }
    )+};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn int_bounds<T: Int + Copy>(range: &impl RangeBounds<T>) -> (T, T) {
    use std::ops::Bound;
    let lo = match range.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(_) => unreachable!("no exclusive start ranges in Rust syntax"),
        Bound::Unbounded => T::MIN,
    };
    let hi = match range.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => T::step_toward(v, lo).expect("empty range"),
        Bound::Unbounded => T::MAX,
    };
    (lo, hi)
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
pub fn floats(range: std::ops::Range<f64>) -> Gen<f64> {
    let (lo, hi) = (range.start, range.end);
    Gen::new(move |rng| rng.random_range(lo..hi)).with_shrink(move |&v| {
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            let mid = lo + (v - lo) / 2.0;
            if mid > lo && mid < v {
                out.push(mid);
            }
        }
        out
    })
}

/// Uniform `bool`; `true` shrinks to `false`.
pub fn bools() -> Gen<bool> {
    Gen::new(|rng| rng.random()).with_shrink(|&v| if v { vec![false] } else { vec![] })
}

/// Any `u8` (full domain).
pub fn any_u8() -> Gen<u8> {
    ints(0u8..=u8::MAX)
}
/// Any `u16` (full domain).
pub fn any_u16() -> Gen<u16> {
    ints(0u16..=u16::MAX)
}
/// Any `u32` (full domain).
pub fn any_u32() -> Gen<u32> {
    ints(0u32..=u32::MAX)
}
/// Any `u64` (full domain).
pub fn any_u64() -> Gen<u64> {
    ints(0u64..=u64::MAX)
}
/// Any `usize` (full domain).
pub fn any_usize() -> Gen<usize> {
    ints(0usize..=usize::MAX)
}
/// Any `u128` (full domain; no shrinking).
pub fn any_u128() -> Gen<u128> {
    Gen::new(|rng| rng.random())
}

/// A vector of `elem` with length drawn from `len` (`0..8`, `1..=4`, …).
///
/// Shrinks aggressively on length (empty, halves, drop-one) and then
/// element-wise, always respecting the minimum length.
pub fn vec_of<T: Clone + PartialEq + 'static>(
    elem: Gen<T>,
    len: impl RangeBounds<usize> + Clone + 'static,
) -> Gen<Vec<T>> {
    let (min_len, max_len) = usize_bounds(&len, 64);
    let inner = elem.clone();
    Gen::new(move |rng| {
        let n = rng.random_range(min_len..=max_len);
        (0..n).map(|_| inner.sample(rng)).collect()
    })
    .with_shrink(move |v: &Vec<T>| {
        let mut out: Vec<Vec<T>> = Vec::new();
        if v.len() > min_len {
            out.push(v[..min_len].to_vec());
            let half = (v.len() + min_len) / 2;
            if half > min_len && half < v.len() {
                out.push(v[..half].to_vec());
            }
            // Drop a single element at a few positions.
            for i in [0, v.len() / 2, v.len() - 1] {
                if v.len() > min_len {
                    let mut w = v.clone();
                    w.remove(i);
                    if !out.contains(&w) {
                        out.push(w);
                    }
                }
            }
        }
        // Shrink individual elements (bounded fan-out).
        for i in 0..v.len().min(8) {
            for cand in elem.shrink(&v[i]).into_iter().take(2) {
                let mut w = v.clone();
                w[i] = cand;
                out.push(w);
            }
        }
        out
    })
}

/// A `String` of characters drawn uniformly from `alphabet`, with length in
/// `len`. Shrinks on length toward the minimum.
pub fn string_of(alphabet: &str, len: impl RangeBounds<usize> + Clone + 'static) -> Gen<String> {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "empty alphabet");
    let (min_len, max_len) = usize_bounds(&len, 64);
    let gen_chars = chars.clone();
    Gen::new(move |rng| {
        let n = rng.random_range(min_len..=max_len);
        (0..n).map(|_| *rng.choose(&gen_chars).unwrap()).collect()
    })
    .with_shrink(move |s: &String| {
        let mut out = Vec::new();
        let v: Vec<char> = s.chars().collect();
        if v.len() > min_len {
            out.push(v[..min_len].iter().collect());
            let half = (v.len() + min_len) / 2;
            if half > min_len && half < v.len() {
                out.push(v[..half].iter().collect());
            }
            out.push(v[..v.len() - 1].iter().collect());
        }
        out
    })
}

/// Common character sets for [`string_of`].
pub mod alphabet {
    /// Lowercase letters.
    pub const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
    /// Lowercase letters and digits.
    pub const LOWER_ALNUM: &str = "abcdefghijklmnopqrstuvwxyz0123456789";
    /// Digits.
    pub const DIGITS: &str = "0123456789";
    /// Printable ASCII, space through `~` (0x20–0x7E).
    pub const PRINTABLE: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";
    /// Visible ASCII, `!` through `~` (0x21–0x7E; no space).
    pub const VISIBLE: &str = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";
}

/// Arbitrary bytes with length in `len` — the fuzz staple.
pub fn bytes(len: impl RangeBounds<usize> + Clone + 'static) -> Gen<Vec<u8>> {
    vec_of(any_u8(), len)
}

/// Choose uniformly among complete generators (the `prop_oneof!`
/// replacement). Values do not shrink across branches.
pub fn one_of<T: 'static>(branches: Vec<Gen<T>>) -> Gen<T> {
    assert!(!branches.is_empty(), "one_of with no branches");
    Gen::new(move |rng| {
        let i = rng.random_range(0..branches.len());
        branches[i].sample(rng)
    })
}

macro_rules! impl_tuple_gen {
    ($fn_name:ident: $($g:ident $t:ident $idx:tt),+) => {
        /// Generate a tuple component-wise; shrinks one component at a time.
        pub fn $fn_name<$($t: Clone + 'static),+>($($g: Gen<$t>),+) -> Gen<($($t,)+)> {
            let gens = ($($g,)+);
            let sgens = gens.clone();
            Gen::new(move |rng| ($(gens.$idx.sample(rng),)+))
                .with_shrink(move |v| {
                    let mut out = Vec::new();
                    $(
                        for cand in sgens.$idx.shrink(&v.$idx).into_iter().take(4) {
                            let mut w = v.clone();
                            w.$idx = cand;
                            out.push(w);
                        }
                    )+
                    out
                })
        }
    };
}

impl_tuple_gen!(tuple2: a A 0, b B 1);
impl_tuple_gen!(tuple3: a A 0, b B 1, c C 2);
impl_tuple_gen!(tuple4: a A 0, b B 1, c C 2, d D 3);
impl_tuple_gen!(tuple5: a A 0, b B 1, c C 2, d D 3, e E 4);

/// Run `prop` over `cfg.cases` generated inputs; panic with a shrunk
/// witness and replay instructions on the first failure.
pub fn check<T: Debug + 'static>(
    name: &str,
    cfg: &Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> TestResult,
) {
    let mut executed = 0u32;
    let mut discarded = 0u32;
    let mut case_index = 0u64;
    while executed < cfg.cases {
        if discarded > cfg.cases.saturating_mul(10) + 100 {
            panic!(
                "[qc] property '{name}': gave up after {discarded} discards \
                 ({executed}/{} cases passed) — loosen the assumptions",
                cfg.cases
            );
        }
        let case_seed = mix64(cfg.seed ^ case_index);
        case_index += 1;
        let mut rng = Xoshiro256pp::seed_from_u64(case_seed);
        let value = gen.sample(&mut rng);
        match prop(&value) {
            TestResult::Pass => executed += 1,
            TestResult::Discard => discarded += 1,
            TestResult::Fail(msg) => {
                let (minimal, final_msg, steps) = shrink_failure(cfg, gen, &prop, value, msg);
                panic!(
                    "[qc] property '{name}' failed after {executed} passing case(s)\n\
                     minimal input ({steps} shrink step(s)): {minimal:?}\n\
                     error: {final_msg}\n\
                     replay: QC_SEED={:#x} (base seed; failing case #{})",
                    cfg.seed,
                    case_index - 1,
                )
            }
        }
    }
}

fn shrink_failure<T: Debug + 'static>(
    cfg: &Config,
    gen: &Gen<T>,
    prop: &impl Fn(&T) -> TestResult,
    mut current: T,
    mut msg: String,
) -> (T, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in gen.shrink(&current) {
            if let TestResult::Fail(m) = prop(&candidate) {
                current = candidate;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, msg, steps)
}

/// Fail the surrounding property unless `cond` holds.
#[macro_export]
macro_rules! qc_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::qc::TestResult::Fail(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::qc::TestResult::Fail(format!($($fmt)+));
        }
    };
}

/// Fail the surrounding property unless the two expressions are equal.
#[macro_export]
macro_rules! qc_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return $crate::qc::TestResult::Fail(format!(
                "{} != {}\n  left: {:?}\n  right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
}

/// Fail the surrounding property if the two expressions are equal.
#[macro_export]
macro_rules! qc_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return $crate::qc::TestResult::Fail(format!(
                "{} == {} (both {:?})",
                stringify!($a),
                stringify!($b),
                left
            ));
        }
    }};
}

/// Discard the current input unless `cond` holds (does not count as a
/// pass or failure).
#[macro_export]
macro_rules! qc_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::qc::TestResult::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            cases: 64,
            seed: DEFAULT_SEED,
            max_shrink_steps: 1024,
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check("counts", &cfg(), &ints(0u32..100), |&v| {
            counter.set(counter.get() + 1);
            qc_assert!(v < 100);
            pass()
        });
        assert_eq!(counter.get(), 64);
    }

    #[test]
    fn failing_property_panics_with_replay_seed() {
        let result = std::panic::catch_unwind(|| {
            check("always-fails", &cfg(), &ints(0u32..10), |_| {
                TestResult::Fail("nope".into())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("QC_SEED="), "no replay seed in: {msg}");
        assert!(msg.contains("always-fails"));
    }

    #[test]
    fn shrinker_minimizes_integer_threshold() {
        // Fails iff v >= 1000: the minimal witness is exactly 1000.
        let result = std::panic::catch_unwind(|| {
            check("threshold", &cfg(), &ints(0u64..1_000_000), |&v| {
                qc_assert!(v < 1000, "too big: {v}");
                pass()
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("minimal input") && msg.contains(" 1000\n"),
            "did not shrink to 1000: {msg}"
        );
    }

    #[test]
    fn shrinker_minimizes_vec_length() {
        // Fails iff the vec has >= 5 elements; minimal witness has exactly 5.
        let result = std::panic::catch_unwind(|| {
            check(
                "vec-len",
                &cfg(),
                &vec_of(ints(0u8..=255), 0..40),
                |v: &Vec<u8>| {
                    qc_assert!(v.len() < 5, "len {}", v.len());
                    pass()
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("len 5"), "did not shrink to len 5: {msg}");
    }

    #[test]
    fn discards_do_not_consume_cases() {
        let passed = std::cell::Cell::new(0u32);
        check("assume", &cfg(), &ints(0u32..100), |&v| {
            qc_assume!(v % 2 == 0);
            passed.set(passed.get() + 1);
            pass()
        });
        assert_eq!(
            passed.get(),
            64,
            "all counted cases satisfied the assumption"
        );
    }

    #[test]
    fn same_config_generates_identical_inputs() {
        let collect = || {
            let v = std::cell::RefCell::new(Vec::new());
            check("det", &cfg(), &vec_of(ints(0u32..1000), 0..10), |x| {
                v.borrow_mut().push(x.clone());
                pass()
            });
            v.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn string_and_filter_generators_respect_constraints() {
        check(
            "strings",
            &cfg(),
            &string_of(alphabet::LOWER_ALNUM, 1..=8),
            |s: &String| {
                qc_assert!((1..=8).contains(&s.len()));
                qc_assert!(s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
                pass()
            },
        );
        check(
            "filter",
            &cfg(),
            &ints(0u32..100).filter(|v| v % 3 == 0),
            |&v| {
                qc_assert!(v % 3 == 0);
                pass()
            },
        );
    }

    #[test]
    fn tuples_shrink_componentwise() {
        let g = tuple2(ints(0u32..100), ints(0u32..100));
        let shrunk = g.shrink(&(50, 0));
        assert!(shrunk.iter().any(|&(a, b)| a < 50 && b == 0));
        assert!(shrunk.iter().all(|&(_, b)| b == 0), "second stays minimal");
    }
}
