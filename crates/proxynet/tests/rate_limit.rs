//! Per-customer rate limiting at the super proxy: over-limit requests are
//! delayed to the next token refill, visible as virtual-time stretch.

use dnswire::DnsName;
use httpwire::{Response, Uri};
use inetdb::{CountryCode, InternetRegistry};
use netsim::{SimDuration, SimRng, SimTime};
use proxynet::{ExitNode, NodeId, Platform, ResolverChoice, UsernameOptions, World};

fn tiny_world() -> World {
    let mut reg = InternetRegistry::new();
    let google = reg.register_org("Google", CountryCode::new("US"));
    let gasn = reg.register_as_with_prefix(google, inetdb::GOOGLE_ANYCAST_NET.parse().unwrap());
    let isp = reg.register_org("ISP", CountryCode::new("US"));
    let isp_asn = reg.register_as(isp, 1);
    let lab = reg.register_org("Lab", CountryCode::new("US"));
    let lab_asn = reg.register_as(lab, 1);
    let web_ip = reg.alloc_ip(lab_asn);
    let anycast = vec![reg.alloc_ip(gasn)];
    let node_ip = reg.alloc_ip(isp_asn);
    reg.snapshot_rib();
    let mut rng = SimRng::new(4);
    let (roots, _) = certs::RootStore::os_x_like(1, SimTime::EPOCH, &mut rng);
    let mut w = World::new(
        9,
        DnsName::parse("probe.example").unwrap(),
        web_ip,
        anycast,
        reg,
        roots,
    );
    w.add_node(ExitNode::new(
        NodeId(0),
        node_ip,
        isp_asn,
        CountryCode::new("US"),
        Platform::Windows,
        ResolverChoice::GoogleDns,
    ));
    let apex = w.auth_apex().clone();
    let web = w.web_ip();
    w.auth_server_mut()
        .zone_mut()
        .add_a(apex.child("x").unwrap(), web);
    w.web_server_mut().put(
        "x.probe.example",
        "/",
        Response::ok("text/html", b"y".to_vec()),
    );
    w
}

fn burst(w: &mut World, n: u64) -> SimDuration {
    let start = w.now();
    for i in 0..n {
        let opts = UsernameOptions::new("shaped").session(i);
        w.proxy_get(&opts, &Uri::http("x.probe.example", "/"))
            .unwrap();
    }
    w.now().since(start)
}

#[test]
fn unshaped_bursts_run_at_link_speed() {
    let mut w = tiny_world();
    let elapsed = burst(&mut w, 20);
    // ~20 requests at sub-second RTTs.
    assert!(elapsed < SimDuration::from_secs(30), "elapsed {elapsed}");
}

#[test]
fn shaping_delays_over_limit_requests() {
    let mut w = tiny_world();
    // 2 requests per 10 s.
    w.set_customer_rate_limit(2, SimDuration::from_secs(10));
    let elapsed = burst(&mut w, 20);
    // 20 requests at 2 per 10 s need at least ~90 s of bucket time.
    assert!(
        elapsed >= SimDuration::from_secs(80),
        "shaping should stretch the burst: {elapsed}"
    );
}

#[test]
fn shaping_is_per_customer() {
    let mut w = tiny_world();
    w.set_customer_rate_limit(1, SimDuration::from_secs(60));
    let opts_a = UsernameOptions::new("alice").session(1);
    let opts_b = UsernameOptions::new("bob").session(1);
    let start = w.now();
    w.proxy_get(&opts_a, &Uri::http("x.probe.example", "/"))
        .unwrap();
    w.proxy_get(&opts_b, &Uri::http("x.probe.example", "/"))
        .unwrap();
    // Two different customers each have their own bucket: no 60 s stall.
    assert!(w.now().since(start) < SimDuration::from_secs(30));
}
