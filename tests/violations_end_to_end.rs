//! Cross-crate end-to-end checks on a purpose-built mini world: every
//! violator class planted exactly once per category, every detector must
//! find exactly it.

use tft::prelude::*;
use tft::tft_core::obs::DnsOutcome;
use tft::worldgen::spec::*;

fn mini_spec() -> WorldSpec {
    WorldSpec {
        seed: 99,
        scale: 1.0,
        probe_apex: "lab.example".into(),
        countries: vec![
            CountrySpec {
                code: "XA".into(),
                has_rankings: true,
                isps: vec![
                    IspSpec {
                        resolver_hijack: true,
                        landing_domain: Some("assist.hijack-isp.example".into()),
                        google_dns_share: 0.0,
                        public_dns_share: 0.0,
                        ..IspSpec::clean("Hijack ISP", 120)
                    },
                    IspSpec {
                        transcoder: Some(TranscoderSpec {
                            ratios: vec![0.5],
                            tethered_share: 1.0,
                        }),
                        ..IspSpec::clean("Mobile Carrier", 60)
                    },
                    IspSpec::clean("Clean ISP", 400),
                ],
            },
            CountrySpec {
                code: "XB".into(),
                has_rankings: true,
                isps: vec![IspSpec {
                    auto_as_count: 10,
                    ..IspSpec::clean("Clean ISP B", 300)
                }],
            },
        ],
        public_resolvers: PublicResolverSpec {
            clean_servers: 10,
            services: vec![],
            hijacking_service_weight: 0.0,
        },
        endhost: EndhostSpec {
            html_injectors: vec![HtmlInjectorSpec {
                signature: "evil-cdn.example".into(),
                is_script_url: true,
                nodes: 40,
                country: Some("XB".into()),
                payload_bytes: 4096,
                ad_count: 5,
            }],
            tls_interceptors: vec![TlsInterceptorSpec {
                issuer: "Lab Shield Root".into(),
                nodes: 30,
                shared_key: true,
                invalid: InvalidPolicySpec::MaskWithTrustedRoot,
                copy_fields: false,
                per_site_fraction: 1.0,
                country: None,
            }],
            monitor_attach: vec![MonitorAttachSpec {
                entity: "Lab Monitor".into(),
                nodes: 50,
                country_limit: None,
                vpn: false,
            }],
            ..EndhostSpec::default()
        },
        monitors: vec![MonitorSpec {
            name: "Lab Monitor".into(),
            home_country: "XA".into(),
            source_ips: 3,
            profile: MonitorProfile::Tiscali,
            fixed_second_source: false,
            user_agent: "LabMon/1".into(),
        }],
        sites: SiteSpec::default(),
        campaign: Vec::new(),
    }
}

struct Run {
    built: BuiltWorld,
    report: StudyReport,
}

fn run() -> &'static Run {
    use std::sync::OnceLock;
    static RUN: OnceLock<Run> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut built = build(&mini_spec());
        let cfg = StudyConfig {
            min_nodes_per_country: 10,
            min_nodes_per_dns_server: 3,
            min_nodes_per_domain: 2,
            min_nodes_per_as: 3,
            ..StudyConfig::default()
        };
        let report = run_study(&mut built.world, &cfg);
        Run { built, report }
    })
}

#[test]
fn hijacking_isp_is_attributed_by_name() {
    let r = run();
    assert!(
        r.report
            .dns
            .isp_rows
            .iter()
            .any(|row| row.isp == "Hijack ISP"),
        "Hijack ISP missing from {:?}",
        r.report.dns.isp_rows
    );
    // Every hijacked observation links to the hijack landing page.
    for obs in &r.report.dns_data.observations {
        if let DnsOutcome::Hijacked { content } = &obs.outcome {
            let urls = tft::middlebox::extract_urls(content);
            assert!(
                urls.iter().any(|u| u.contains("assist.hijack-isp.example")),
                "hijack content missing landing URL: {urls:?}"
            );
        }
    }
}

#[test]
fn clean_isps_have_no_hijacks() {
    let r = run();
    // No false positives anywhere: every detected hijack is a planted one.
    let detected = r
        .report
        .dns_data
        .observations
        .iter()
        .filter(|o| matches!(o.outcome, DnsOutcome::Hijacked { .. }))
        .count();
    assert_eq!(detected, r.report.dns.hijacked);
    for obs in &r.report.dns_data.observations {
        if matches!(obs.outcome, DnsOutcome::Hijacked { .. }) {
            let org = r
                .built
                .world
                .registry
                .org_of_ip(obs.node_ip)
                .expect("node has org");
            assert_eq!(org.name, "Hijack ISP", "false positive in {}", org.name);
        }
    }
}

#[test]
fn transcoder_as_found_with_correct_ratio() {
    let r = run();
    let row = r
        .report
        .http
        .image_rows
        .iter()
        .find(|row| row.isp == "Mobile Carrier")
        .expect("mobile carrier detected");
    assert_eq!(row.ratios.len(), 1);
    assert!((row.ratios[0] - 0.5).abs() < 0.02, "ratio {:?}", row.ratios);
    assert!(row.mod_ratio() > 0.9, "tethered share 1.0 ⇒ ~all modified");
}

#[test]
fn injector_signature_recovered() {
    let r = run();
    assert!(
        r.report
            .http
            .signatures
            .iter()
            .any(|s| s.signature.contains("evil-cdn.example")),
        "signatures: {:?}",
        r.report.http.signatures
    );
}

#[test]
fn tls_issuer_recovered_with_masking_flag() {
    let r = run();
    let row = r
        .report
        .https
        .issuers
        .iter()
        .find(|row| row.issuer == "Lab Shield Root")
        .expect("issuer found");
    assert!(row.nodes > 0);
    assert!(
        row.masks_invalid_nodes > 0,
        "MaskWithTrustedRoot product must be flagged as masking"
    );
}

#[test]
fn monitor_entity_with_exact_thirty_second_delay() {
    let r = run();
    let e = r
        .report
        .monitor
        .entities
        .iter()
        .find(|e| e.name.contains("Lab Monitor"))
        .expect("entity found");
    assert!(e.nodes > 10, "found {} nodes", e.nodes);
    let cdf = e.delay_cdf().expect("has positive delays");
    // Tiscali profile: exactly one refetch at 30 s (plus ~ms origin skew).
    assert!(
        (29.0..32.0).contains(&cdf.quantile(0.5)),
        "median {}",
        cdf.quantile(0.5)
    );
    assert!((29.0..32.0).contains(&cdf.quantile(0.99)));
}

#[test]
fn scorecard_is_clean_on_mini_world() {
    let r = run();
    let card = score_report(&r.report, &r.built.truth);
    assert!(
        card.dns.precision() == 1.0 && card.dns.recall() == 1.0,
        "{}",
        card.dns
    );
    assert!(card.http_html.precision() == 1.0, "{}", card.http_html);
    assert!(card.http_image.precision() == 1.0, "{}", card.http_image);
    assert!(card.https.precision() == 1.0, "{}", card.https);
    assert!(
        card.monitor.precision() == 1.0 && card.monitor.recall() == 1.0,
        "{}",
        card.monitor
    );
}
